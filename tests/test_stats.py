"""Tests for the measurement statistics of Section 4.3."""

import math

import pytest

from repro.harness.stats import LatencySample, summarize


class TestLatencySample:
    def test_empty_sample(self):
        s = LatencySample()
        assert len(s) == 0
        assert math.isnan(s.mean)
        assert math.isnan(s.percentile(50))
        assert math.isnan(s.maximum)
        assert not s.converged()

    def test_empty_sample_statistics_agree(self):
        """mean, percentile, and maximum all read NaN when nothing was
        measured; maximum used to report 0, which is a plausible real
        latency."""
        s = LatencySample()
        assert math.isnan(s.maximum)
        assert math.isnan(s.mean)
        assert math.isnan(s.percentile(99.0))

    def test_percentile_validates_q_before_empty_check(self):
        """An out-of-range q is a caller bug and must raise even on an
        empty sample (it used to return NaN and hide the error)."""
        with pytest.raises(ValueError):
            LatencySample().percentile(150.0)
        with pytest.raises(ValueError):
            LatencySample().percentile(-0.5)

    def test_mean(self):
        s = LatencySample()
        for x in (10, 20, 30):
            s.add(x)
        assert s.mean == 20.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencySample().add(-1)

    def test_percentiles(self):
        s = LatencySample()
        for x in range(1, 101):
            s.add(x)
        assert s.percentile(0) == 1
        assert s.percentile(100) == 100
        assert abs(s.percentile(50) - 50.5) < 1e-9

    def test_percentile_single_element(self):
        s = LatencySample()
        s.add(7)
        assert s.percentile(99) == 7.0

    def test_percentile_range_check(self):
        s = LatencySample()
        s.add(1)
        with pytest.raises(ValueError):
            s.percentile(101)

    def test_maximum(self):
        s = LatencySample()
        for x in (3, 9, 1):
            s.add(x)
        assert s.maximum == 9

    def test_ci_infinite_with_little_data(self):
        s = LatencySample()
        for x in range(5):
            s.add(x)
        assert s.confidence_halfwidth() == float("inf")

    def test_ci_shrinks_for_constant_data(self):
        s = LatencySample()
        for _ in range(200):
            s.add(50)
        assert s.confidence_halfwidth() == 0.0
        assert s.converged()

    def test_ci_wide_for_noisy_data(self):
        s = LatencySample()
        for i in range(100):
            s.add(1 if i % 2 == 0 else 1000)
        # Alternating batches have equal means, so interleave batches
        # differently: make batch means diverge.
        s2 = LatencySample()
        for i in range(100):
            s2.add(1 if i < 50 else 1000)
        assert s2.confidence_halfwidth() > 100

    def test_invalid_confidence(self):
        s = LatencySample()
        s.add(1)
        with pytest.raises(ValueError):
            s.confidence_halfwidth(confidence=0.5)

    def test_ci_remainder_folded_into_last_batch(self):
        """n % batches tail observations must contribute to the CI.

        Regression: with 25 samples and 10 batches (size 2), the last
        5 samples were silently dropped, so an outlier tail did not
        widen the interval.  Folding the remainder into the final
        batch makes the two samples below differ."""
        head = [50] * 20
        tail_clean = [50] * 5
        tail_outliers = [5000] * 5
        a, b = LatencySample(), LatencySample()
        for v in head + tail_clean:
            a.add(v)
        for v in head + tail_outliers:
            b.add(v)
        assert a.confidence_halfwidth() == 0.0
        # Before the fix both half-widths were 0.0: the outlier tail
        # lived entirely in the dropped remainder.
        assert b.confidence_halfwidth() > 100.0

    def test_ci_exact_batches_unchanged(self):
        """When n is a multiple of batches the fold is a no-op."""
        s = LatencySample()
        for i in range(100):
            s.add(i % 7)
        size = 10
        means = [
            sum(s.latencies[b * size : (b + 1) * size]) / size
            for b in range(10)
        ]
        grand = sum(means) / 10
        var = sum((m - grand) ** 2 for m in means) / 9
        import math
        expected = 2.5758 * math.sqrt(var / 10)
        assert abs(s.confidence_halfwidth() - expected) < 1e-12


class TestSummarize:
    def _sample(self, values):
        s = LatencySample()
        for v in values:
            s.add(v)
        return s

    def test_throughput_fraction_of_capacity(self):
        """1000 flits over 1000 cycles, 16 ports at 0.25 flits/cycle
        capacity: 1000 / (1000*16*0.25) = 0.25."""
        r = summarize(
            offered_load=0.3,
            sample=self._sample([10, 20]),
            measured_flits=1000,
            measured_cycles=1000,
            num_ports=16,
            capacity=0.25,
            saturated=False,
            cycles=5000,
        )
        assert r.throughput == pytest.approx(0.25)
        assert r.avg_latency == 15.0
        assert r.offered_load == 0.3
        assert r.packets_measured == 2
        assert not r.saturated

    def test_zero_cycles(self):
        r = summarize(0.1, self._sample([1]), 0, 0, 4, 0.25, False, 0)
        assert r.throughput == 0.0

    def test_row(self):
        r = summarize(0.5, self._sample([10]), 100, 100, 4, 0.25, True, 100)
        load, lat, thpt = r.row()
        assert load == 0.5
        assert lat == 10.0
        assert thpt == pytest.approx(1.0)
