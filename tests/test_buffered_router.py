"""Behavioral tests for the fully buffered crossbar (Section 5)."""

from repro.core.config import RouterConfig
from repro.core.flit import make_packet
from repro.harness.experiment import SwitchSimulation, SweepSettings
from repro.routers.buffered import BufferedCrossbarRouter

CFG = RouterConfig(radix=8, num_vcs=2, subswitch_size=4, local_group_size=4)
FAST = SweepSettings(warmup=400, measure=800, drain=50)


def _drain(router, max_cycles=800):
    out = []
    for _ in range(max_cycles):
        router.step()
        out.extend(router.drain_ejected())
        if router.idle():
            break
    return out


class TestCrosspointFlow:
    def test_flit_lands_in_crosspoint_then_leaves(self):
        router = BufferedCrossbarRouter(CFG)
        (flit,) = make_packet(dest=3, size=1, src=2)
        router.accept(2, flit)
        _drain(router)
        assert router.stats.flits_ejected == 1
        assert router.crosspoint_occupancy() == 0
        # The flit crossed the input row, the crosspoint, and the
        # output column: two traversals plus the head delay.
        assert router.stats.switch_grants == 1

    def test_credit_consumed_and_restored(self):
        router = BufferedCrossbarRouter(CFG)
        depth = CFG.crosspoint_buffer_depth
        (flit,) = make_packet(dest=3, size=1, src=2)
        router.accept(2, flit)
        router.step()  # head delay
        router.step()  # launch: credit consumed
        assert router._credits[2][3][0].free == depth - 1
        _drain(router)
        assert router._credits[2][3][0].free == depth

    def test_no_hol_blocking_across_destinations(self):
        """A blocked destination must not stop traffic on another VC to
        a different destination."""
        cfg = CFG.with_(crosspoint_buffer_depth=1, num_vcs=2)
        router = BufferedCrossbarRouter(cfg)
        # Saturate crosspoint (0 -> 1) on VC 0 with back-to-back packets.
        for pkt in range(4):
            (f,) = make_packet(dest=1, size=1, src=0)
            f.vc = 0
            router.accept(0, f)
        # A packet on VC 1 to a different output should still get through.
        (g,) = make_packet(dest=5, size=1, src=0)
        g.vc = 1
        router.accept(0, g)
        out = _drain(router)
        assert len(out) == 5
        assert {f.dest for f, _ in out} == {1, 5}


class TestCreditReturnBus:
    def test_shared_bus_close_to_ideal(self):
        """Section 5.2: 'there is minimal difference between the ideal
        scheme and the shared bus'."""
        cfg = RouterConfig(radix=16, subswitch_size=4, local_group_size=4)
        shared = SwitchSimulation(
            BufferedCrossbarRouter(cfg), load=0.9
        ).run(FAST)
        ideal = SwitchSimulation(
            BufferedCrossbarRouter(cfg.with_(ideal_credit_return=True)),
            load=0.9,
        ).run(FAST)
        assert abs(shared.throughput - ideal.throughput) < 0.05

    def test_ideal_credit_mode_constructs(self):
        router = BufferedCrossbarRouter(CFG.with_(ideal_credit_return=True))
        assert router._credit_buses is None
        assert router._credit_pipes is not None


class TestSaturation:
    def test_near_full_throughput_on_uniform(self):
        """Figure 13: the fully buffered crossbar reaches ~100%."""
        cfg = RouterConfig(radix=16, subswitch_size=4, local_group_size=4)
        sim = SwitchSimulation(BufferedCrossbarRouter(cfg), load=1.0)
        r = sim.run(FAST)
        assert r.throughput > 0.9

    def test_outperforms_distributed_baseline(self):
        """Figure 13: buffered beats the unbuffered baseline."""
        from repro.routers.distributed import DistributedRouter

        cfg = RouterConfig(radix=16, subswitch_size=4, local_group_size=4)
        buf = SwitchSimulation(BufferedCrossbarRouter(cfg), load=1.0).run(FAST)
        base = SwitchSimulation(DistributedRouter(cfg), load=1.0).run(FAST)
        assert buf.throughput > base.throughput + 0.2


class TestBufferSizeEffect:
    def test_larger_buffers_help_long_packets(self):
        """Figure 14(b): long packets need deeper crosspoint buffers."""
        cfg = RouterConfig(radix=16, subswitch_size=4, local_group_size=4,
                           input_buffer_depth=64)
        small = SwitchSimulation(
            BufferedCrossbarRouter(cfg.with_(crosspoint_buffer_depth=1)),
            load=1.0, packet_size=10,
        ).run(FAST)
        large = SwitchSimulation(
            BufferedCrossbarRouter(cfg.with_(crosspoint_buffer_depth=16)),
            load=1.0, packet_size=10,
        ).run(FAST)
        assert large.throughput > small.throughput
