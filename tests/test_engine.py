"""Tests for the ``repro.engine`` two-phase simulation kernel.

Covers the three pieces every simulation layer now shares:

* :class:`~repro.engine.Component` — compute/commit phase ordering and
  the standalone ``step()`` compatibility path;
* :class:`~repro.engine.Scheduler` — active-set parking, wake-up, and
  the guarantee that parking never changes simulation results;
* :class:`~repro.engine.EngineHooks` — the event bus instrumentation
  attaches through.
"""

import pytest

from repro.core.config import RouterConfig
from repro.engine import Component, EngineHooks, Scheduler
from repro.harness.experiment import SweepSettings, SwitchSimulation
from repro.harness.metrics import MetricsCollector
from repro.network.netsim import ClosNetworkSimulation, NetworkConfig
from repro.routers.hierarchical import HierarchicalCrossbarRouter

SMALL = RouterConfig(radix=8, num_vcs=2, subswitch_size=4,
                     local_group_size=4)
SETTINGS = SweepSettings(warmup=150, measure=300, drain=3000)


class Ticker(Component):
    """Minimal component: busy for its first ``work`` commits."""

    def __init__(self, work=0, journal=None, name="t"):
        super().__init__()
        self.work = work
        self.journal = journal if journal is not None else []
        self.name = name
        self.wakes = []

    def compute(self, cycle):
        self.journal.append(("compute", self.name, cycle))

    def commit(self, cycle):
        self.journal.append(("commit", self.name, cycle))
        if self.work:
            self.work -= 1
        self.cycle = cycle + 1

    def busy(self):
        return self.work > 0

    def on_wake(self, cycle):
        self.wakes.append(cycle)
        super().on_wake(cycle)


class TestComponent:
    def test_step_runs_compute_then_commit(self):
        t = Ticker(work=3)
        t.step()
        t.step()
        assert t.journal == [
            ("compute", "t", 0), ("commit", "t", 0),
            ("compute", "t", 1), ("commit", "t", 1),
        ]
        assert t.cycle == 2

    def test_step_fires_hooks_with_pre_and_post_cycle(self):
        t = Ticker(work=1)
        events = []
        t.hooks.on_cycle_start(lambda c: events.append(("start", c)))
        t.hooks.on_cycle_end(lambda c: events.append(("end", c)))
        t.step()
        assert events == [("start", 0), ("end", 1)]

    def test_base_component_is_abstract(self):
        c = Component()
        with pytest.raises(NotImplementedError):
            c.compute(0)
        with pytest.raises(NotImplementedError):
            c.commit(0)
        assert c.busy() is True


class TestScheduler:
    def test_all_computes_precede_all_commits(self):
        journal = []
        a = Ticker(work=2, journal=journal, name="a")
        b = Ticker(work=2, journal=journal, name="b")
        sched = Scheduler([a, b])
        sched.run_cycle(0)
        assert [e[0] for e in journal] == [
            "compute", "compute", "commit", "commit"
        ]
        # Phase order follows registration order.
        assert [e[1] for e in journal] == ["a", "b", "a", "b"]

    def test_idle_components_are_parked(self):
        t = Ticker(work=2)
        sched = Scheduler([t])
        for now in range(5):
            sched.run_cycle(now)
        # Stepped while busy (cycles 0-1), then parked.
        assert [e[2] for e in t.journal if e[0] == "compute"] == [0, 1]
        assert sched.active_count() == 0
        assert sched.cycles_run == 5
        assert sched.component_steps == 2

    def test_cycle_end_fires_even_when_everything_is_parked(self):
        hooks = EngineHooks()
        ends = []
        hooks.on_cycle_end(lambda c: ends.append(c))
        sched = Scheduler([Ticker(work=0)], hooks=hooks)
        for now in range(3):
            sched.run_cycle(now)
        assert ends == [1, 2, 3]

    def test_wake_reactivates_and_fast_forwards_clock(self):
        t = Ticker(work=1)
        sched = Scheduler([t])
        sched.run_cycle(0)
        assert sched.active_count() == 0
        t.work = 1
        sched.wake(t, 7)
        assert sched.active_count() == 1
        assert t.wakes == [7]
        assert t.cycle == 7
        sched.run_cycle(7)
        assert t.journal[-1] == ("commit", "t", 7)

    def test_wake_on_active_component_is_a_no_op(self):
        t = Ticker(work=5)
        sched = Scheduler([t])
        sched.wake(t, 3)
        assert t.wakes == []

    def test_active_set_false_steps_everything(self):
        a, b = Ticker(work=0), Ticker(work=0)
        sched = Scheduler([a, b], active_set=False)
        for now in range(4):
            sched.run_cycle(now)
        assert sched.component_steps == 8
        assert len(a.journal) == 8  # 4 computes + 4 commits

    def test_register_after_construction(self):
        sched = Scheduler()
        t = Ticker(work=1)
        sched.register(t)
        sched.run_cycle(0)
        assert t.journal

    def test_wake_unregistered_component_names_the_component(self):
        """Regression: this used to surface as an opaque ``KeyError``
        from the scheduler's internal index, with no hint of which
        component the event was delivered to."""
        from repro.engine import UnregisteredComponentError

        sched = Scheduler([Ticker(work=1)])
        stray = Ticker(work=1, name="stray")
        with pytest.raises(UnregisteredComponentError) as exc:
            sched.wake(stray, 3)
        assert "Ticker" in str(exc.value)
        assert "'stray'" in str(exc.value)
        assert "register()" in str(exc.value)
        assert exc.value.component is stray


class TestEngineHooks:
    def test_multiple_subscribers_all_fire(self):
        hooks = EngineHooks()
        seen = []
        hooks.on_flit_move(lambda *a: seen.append(("one", a)))
        hooks.on_flit_move(lambda *a: seen.append(("two", a)))
        hooks.emit_flit_move("accept", "flit", 3, 9)
        assert [s[0] for s in seen] == ["one", "two"]
        assert seen[0][1] == ("accept", "flit", 3, 9)

    def test_registration_returns_the_callback(self):
        hooks = EngineHooks()

        def cb(cycle):
            pass

        assert hooks.on_cycle_start(cb) is cb
        assert hooks.on_cycle_end(cb) is cb
        assert cb in hooks.cycle_start and cb in hooks.cycle_end


class TestActiveSetEquivalence:
    """Parking must be invisible in the results, at any load."""

    @pytest.mark.parametrize("load", [0.05, 0.6])
    def test_switch_results_identical(self, load):
        results = []
        for active_set in (True, False):
            sim = SwitchSimulation(
                HierarchicalCrossbarRouter(SMALL), load=load,
                active_set=active_set,
            )
            results.append(sim.run(SETTINGS))
        on, off = results
        assert on.avg_latency == off.avg_latency
        assert on.throughput == off.throughput
        assert on.packets_measured == off.packets_measured
        assert on.extra == off.extra

    def test_low_load_switch_actually_parks(self):
        sim = SwitchSimulation(
            HierarchicalCrossbarRouter(SMALL), load=0.02,
        )
        sim.run(SETTINGS)
        assert sim._sched.component_steps < sim._sched.cycles_run

    def test_network_results_identical(self):
        cfg = NetworkConfig(radix=4, levels=2, num_vcs=2, packet_size=1)
        results = []
        for active_set in (True, False):
            sim = ClosNetworkSimulation(cfg, load=0.2,
                                        active_set=active_set)
            results.append(
                sim.run(warmup=150, measure=250, drain=3000)
            )
        on, off = results
        assert on.avg_latency == off.avg_latency
        assert on.throughput == off.throughput
        assert on.packets_measured == off.packets_measured

    def test_low_load_network_actually_parks(self):
        cfg = NetworkConfig(radix=4, levels=2, num_vcs=2)
        sim = ClosNetworkSimulation(cfg, load=0.02)
        sim.run(warmup=150, measure=250, drain=3000)
        sched = sim._scheduler
        assert sched.component_steps < sched.cycles_run * len(sim.routers)


class TestTraceDeterminism:
    """The exported trace is a function of (config, seed) alone."""

    def _chrome_bytes(self, active_set=True, seed=9):
        from repro.core.flit import reset_packet_ids
        from repro.trace import TraceCollector, chrome_trace_json

        reset_packet_ids()
        collector = TraceCollector()
        sim = SwitchSimulation(
            HierarchicalCrossbarRouter(SMALL), load=0.35, seed=seed,
            active_set=active_set, tracer=collector,
        )
        sim.run(SETTINGS)
        return chrome_trace_json(collector)

    def test_same_seed_byte_identical(self):
        assert self._chrome_bytes() == self._chrome_bytes()

    def test_active_set_invisible_in_trace(self):
        """Scheduler parking must not perturb one traced timestamp."""
        parked = self._chrome_bytes(active_set=True)
        exhaustive = self._chrome_bytes(active_set=False)
        assert parked == exhaustive

    def test_different_seeds_diverge(self):
        assert self._chrome_bytes(seed=9) != self._chrome_bytes(seed=10)


class TestStatsExtraSurviveAggregation:
    def test_bumped_counters_fold_into_result_extra(self):
        router = HierarchicalCrossbarRouter(SMALL)
        sim = SwitchSimulation(router, load=0.3)
        router.stats.bump("speculative_misses", 7)
        result = sim.run(SETTINGS)
        assert result.extra["stats.speculative_misses"] == 7.0
        # Harness bookkeeping still present alongside.
        assert "undelivered" in result.extra

    def test_extras_render_in_reports(self):
        from repro.harness.experiment import SweepResult
        from repro.harness.report import format_extras

        router = HierarchicalCrossbarRouter(SMALL)
        sim = SwitchSimulation(router, load=0.3)
        router.stats.bump("speculative_misses", 7)
        sweep = SweepResult(label="hier", results=[sim.run(SETTINGS)])
        table = format_extras(sweep, title="counters")
        assert "stats.speculative_misses" in table
        assert "7" in table
        assert "undelivered" in table


class TestMetricsAttach:
    def test_hook_fed_metrics_match_pull_style(self):
        pull_sim = SwitchSimulation(
            HierarchicalCrossbarRouter(SMALL), load=0.4,
            record_delivered=True,
        )
        pull = MetricsCollector(SMALL.radix)
        push_sim = SwitchSimulation(
            HierarchicalCrossbarRouter(SMALL), load=0.4,
        )
        push = MetricsCollector(SMALL.radix).attach(push_sim)
        for _ in range(400):
            pull_sim.step()
            pull.observe_cycle(pull_sim)
            push_sim.step()
        assert push.delivered_flits == pull.delivered_flits > 0
        assert push.latency.counts == pull.latency.counts
        assert push.output_flits == pull.output_flits
        assert push.backlog_samples == pull.backlog_samples
        assert push.occupancy_samples == pull.occupancy_samples
