"""Property-based stress tests over the router models.

Hypothesis drives randomized configurations and workloads through each
switch organization, checking the invariants no microarchitecture may
break: conservation, per-packet ordering, VC ownership discipline at
the outputs, and bounded buffer occupancy.
"""

from collections import defaultdict

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.sanitizer import SimSanitizer
from repro.core.config import RouterConfig
from repro.core.flit import make_packet
from repro.routers import (
    BaselineRouter,
    BufferedCrossbarRouter,
    DistributedRouter,
    HierarchicalCrossbarRouter,
    SharedBufferCrossbarRouter,
    VoqRouter,
)

ALL_ROUTERS = [
    BaselineRouter,
    DistributedRouter,
    BufferedCrossbarRouter,
    SharedBufferCrossbarRouter,
    HierarchicalCrossbarRouter,
    VoqRouter,
]

# Randomized workload: a list of packets (src, dest, size, vc).
packets_strategy = st.lists(
    st.tuples(
        st.integers(0, 7),  # src
        st.integers(0, 7),  # dest
        st.integers(1, 4),  # size
        st.integers(0, 1),  # vc
    ),
    min_size=1,
    max_size=25,
)


def _drive(router_cls, packets, num_vcs=2):
    """Inject the packets (respecting buffer space) and drain fully.

    The router runs under :class:`SimSanitizer`, so every randomized
    workload doubles as a structural fuzz test: flit/credit
    conservation, buffer bounds, and VC ownership are verified as the
    simulation advances (the returned router is the unwrapped model).
    """
    cfg = RouterConfig(
        radix=8, num_vcs=num_vcs, subswitch_size=4, local_group_size=4,
        input_buffer_depth=8,
    )
    router = SimSanitizer(router_cls(cfg), check_interval=4)
    # Pending flits per (input, vc) in packet order.
    pending = defaultdict(list)
    for src, dest, size, vc in packets:
        for f in make_packet(dest=dest, size=size, src=src):
            f.vc = vc
            pending[(src, vc)].append(f)
    delivered = []
    for _ in range(6000):
        for (src, vc), flits in pending.items():
            while flits and router.input_space(src, vc) > 0:
                router.accept(src, flits.pop(0))
        router.step()
        delivered.extend(router.drain_ejected())
        if router.idle() and not any(pending.values()):
            break
    if router.idle() and not any(pending.values()):
        router.assert_drained()
    return router.inner, delivered


@pytest.mark.parametrize("router_cls", ALL_ROUTERS)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(packets=packets_strategy)
def test_conservation_and_order(router_cls, packets):
    total_flits = sum(size for _, _, size, _ in packets)
    router, delivered = _drive(router_cls, packets)
    # Every flit delivered exactly once; the router fully drains.
    assert len(delivered) == total_flits
    assert router.idle()
    # Per-packet flit order is preserved.
    seen_index = {}
    for f, _cycle in delivered:
        expected = seen_index.get(f.packet_id, 0)
        assert f.flit_index == expected
        seen_index[f.packet_id] = expected + 1
    # Every delivered flit reaches its requested destination.
    for f, _cycle in delivered:
        assert 0 <= f.dest < 8


@pytest.mark.parametrize("router_cls", ALL_ROUTERS)
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(packets=packets_strategy)
def test_output_vc_discipline(router_cls, packets):
    """No two packets ever interleave on one (output, out VC)."""
    _, delivered = _drive(router_cls, packets)
    open_packet = {}
    for f, _cycle in delivered:
        key = (f.dest, f.out_vc)
        if f.is_head:
            assert open_packet.get(key) is None
            open_packet[key] = f.packet_id
        assert open_packet.get(key) == f.packet_id
        if f.is_tail:
            open_packet.pop(key)


@pytest.mark.parametrize("router_cls", ALL_ROUTERS)
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    packets=packets_strategy,
    num_vcs=st.integers(1, 2),
)
def test_output_vcs_all_released(router_cls, packets, num_vcs):
    """After a full drain, every output VC ledger is free again."""
    packets = [(s, d, size, min(vc, num_vcs - 1))
               for s, d, size, vc in packets]
    router, _ = _drive(router_cls, packets, num_vcs=num_vcs)
    for out in range(8):
        for vc in range(num_vcs):
            assert router.output_vcs[out].is_free(vc)
