"""Tests for round-robin, hierarchical, and prioritized arbiters."""

import pytest
from hypothesis import given, strategies as st

from repro.core.arbiter import (
    HierarchicalArbiter,
    PriorityArbiter,
    RoundRobinArbiter,
)


class TestRoundRobinArbiter:
    def test_no_request_no_grant(self):
        arb = RoundRobinArbiter(4)
        assert arb.arbitrate([False] * 4) is None

    def test_single_request_wins(self):
        arb = RoundRobinArbiter(4)
        assert arb.arbitrate([False, False, True, False]) == 2

    def test_pointer_rotates_past_winner(self):
        arb = RoundRobinArbiter(3)
        assert arb.arbitrate([True, True, True]) == 0
        assert arb.arbitrate([True, True, True]) == 1
        assert arb.arbitrate([True, True, True]) == 2
        assert arb.arbitrate([True, True, True]) == 0

    def test_pointer_not_advanced_without_grant(self):
        arb = RoundRobinArbiter(3)
        arb.arbitrate([False] * 3)
        assert arb.pointer == 0

    def test_no_advance_option(self):
        arb = RoundRobinArbiter(3)
        assert arb.arbitrate([True, True, True], advance=False) == 0
        assert arb.arbitrate([True, True, True], advance=False) == 0

    def test_commit_sets_pointer(self):
        arb = RoundRobinArbiter(4)
        arb.commit(2)
        assert arb.arbitrate([True] * 4) == 3

    def test_commit_out_of_range(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(2).commit(5)

    def test_fairness_over_many_rounds(self):
        """With all lines requesting, every line wins equally often."""
        arb = RoundRobinArbiter(5)
        wins = [0] * 5
        for _ in range(100):
            w = arb.arbitrate([True] * 5)
            wins[w] += 1
        assert wins == [20] * 5

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(3).arbitrate([True])

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)

    @given(st.lists(st.booleans(), min_size=1, max_size=16))
    def test_grant_implies_request(self, requests):
        arb = RoundRobinArbiter(len(requests))
        winner = arb.arbitrate(requests)
        if any(requests):
            assert winner is not None and requests[winner]
        else:
            assert winner is None


class TestHierarchicalArbiter:
    def test_group_structure(self):
        arb = HierarchicalArbiter(64, 8)
        assert arb.num_groups == 8

    def test_uneven_groups(self):
        arb = HierarchicalArbiter(10, 4)
        assert arb.num_groups == 3
        winner = arb.arbitrate([False] * 9 + [True])
        assert winner == 9

    def test_single_winner_per_cycle(self):
        arb = HierarchicalArbiter(16, 4)
        winner = arb.arbitrate([True] * 16)
        assert winner is not None and 0 <= winner < 16

    def test_no_requests(self):
        arb = HierarchicalArbiter(8, 4)
        assert arb.arbitrate([False] * 8) is None

    def test_fairness_across_groups(self):
        """All groups win approximately equally under full load."""
        arb = HierarchicalArbiter(8, 2)
        group_wins = [0] * 4
        for _ in range(400):
            w = arb.arbitrate([True] * 8)
            group_wins[w // 2] += 1
        assert group_wins == [100] * 4

    def test_fairness_within_group(self):
        arb = HierarchicalArbiter(4, 4)  # one group
        wins = [0] * 4
        for _ in range(100):
            wins[arb.arbitrate([True] * 4)] += 1
        assert wins == [25] * 4

    def test_local_pointer_only_rotates_for_transmitting_group(self):
        """Only the globally winning group's local pointer advances."""
        arb = HierarchicalArbiter(4, 2)
        w1 = arb.arbitrate([True, True, True, True])
        w2 = arb.arbitrate([True, True, True, True])
        # The second grant goes to the other group, and within that
        # group to its first-priority member (pointer never advanced).
        assert w1 // 2 != w2 // 2

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            HierarchicalArbiter(8, 4).arbitrate([True] * 7)

    @given(
        st.integers(2, 32),
        st.integers(1, 8),
        st.data(),
    )
    def test_grant_implies_request_property(self, size, group, data):
        arb = HierarchicalArbiter(size, group)
        requests = data.draw(
            st.lists(st.booleans(), min_size=size, max_size=size)
        )
        winner = arb.arbitrate(requests)
        if any(requests):
            assert winner is not None and requests[winner]
        else:
            assert winner is None


class TestPriorityArbiter:
    def test_nonspec_beats_spec(self):
        arb = PriorityArbiter(4)
        winner, spec = arb.arbitrate(
            [False, True, False, False], [True, False, True, True]
        )
        assert winner == 1
        assert not spec

    def test_spec_granted_only_without_nonspec(self):
        arb = PriorityArbiter(4)
        winner, spec = arb.arbitrate([False] * 4, [False, False, True, False])
        assert winner == 2
        assert spec

    def test_no_requests(self):
        arb = PriorityArbiter(4)
        winner, spec = arb.arbitrate([False] * 4, [False] * 4)
        assert winner is None
        assert not spec

    def test_spec_pointer_frozen_while_nonspec_wins(self):
        """Figure 10(b): the speculative pointer is updated only when a
        speculative request is actually granted."""
        arb = PriorityArbiter(3)
        # Nonspeculative traffic dominates for a while.
        for _ in range(5):
            arb.arbitrate([True, True, True], [True, True, True])
        # First speculative grant still goes to line 0.
        winner, spec = arb.arbitrate([False] * 3, [True, True, True])
        assert spec
        assert winner == 0

    def test_hierarchical_variant(self):
        arb = PriorityArbiter(16, group_size=4)
        winner, spec = arb.arbitrate([False] * 16, [False] * 15 + [True])
        assert winner == 15
        assert spec
