"""Tests for deterministic fault injection (repro.faults).

Covers the FaultPlan model, the CRC detection code, both injectors
(switch and network), graceful degradation around dead links, the
sanitizer accounting for injected losses, hook/trace/metrics plumbing,
and the determinism guarantees of docs/faults.md.
"""

import pytest

from repro.core.config import RouterConfig
from repro.core.credit import CreditCounter, DelayedCreditPipe
from repro.faults import (
    CORRUPT,
    CREDIT_LOSS,
    FaultPlan,
    LinkFault,
    NetworkFaultInjector,
    StuckFault,
    SwitchFaultInjector,
    crc8,
    flit_checksum,
    sample_link_faults,
)
from repro.harness.experiment import SweepSettings, SwitchSimulation
from repro.network.mesh import Mesh
from repro.network.netsim import ClosNetworkSimulation, NetworkConfig
from repro.network.topology import FoldedClos
from repro.routers.baseline import BaselineRouter
from repro.routers.buffered import BufferedCrossbarRouter
from repro.routers.hierarchical import HierarchicalCrossbarRouter
from repro.routers.voq import VoqRouter

CFG = RouterConfig(radix=8, num_vcs=2, subswitch_size=4, local_group_size=4)
FAST = SweepSettings(warmup=150, measure=300, drain=3000)
NET = NetworkConfig(radix=8, levels=2)


# ----------------------------------------------------------------------
# FaultPlan model
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_disabled_by_default(self):
        assert not FaultPlan().enabled

    def test_enabled_by_any_mechanism(self):
        assert FaultPlan(corrupt_rate=0.1).enabled
        assert FaultPlan(credit_loss_rate=0.1).enabled
        assert FaultPlan(stuck=(StuckFault(1, (0, 0)),)).enabled
        assert FaultPlan(links=(LinkFault(1, (0, 0, 0), 0),)).enabled

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(corrupt_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(credit_loss_rate=-0.1)

    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(retransmit_timeout=0)
        with pytest.raises(ValueError):
            FaultPlan(retransmit_backoff=0.5)
        with pytest.raises(ValueError):
            FaultPlan(retransmit_timeout=8, retransmit_cap=4)
        with pytest.raises(ValueError):
            FaultPlan(credit_resync_timeout=0)

    def test_retry_delay_backs_off_and_caps(self):
        plan = FaultPlan(corrupt_rate=0.1, retransmit_timeout=4,
                         retransmit_backoff=2.0, retransmit_cap=20)
        assert plan.retry_delay(1) == 4
        assert plan.retry_delay(2) == 8
        assert plan.retry_delay(3) == 16
        assert plan.retry_delay(4) == 20  # capped
        assert plan.retry_delay(10) == 20

    def test_stuck_fault_validation(self):
        with pytest.raises(ValueError):
            StuckFault(cycle=-1, where=(0,))
        with pytest.raises(ValueError):
            StuckFault(cycle=10, where=(0,), until=10)
        with pytest.raises(ValueError):
            StuckFault(cycle=10, where=())
        with pytest.raises(ValueError):
            StuckFault(cycle=10, where=(0,), kind="bogus")

    def test_link_fault_validation(self):
        with pytest.raises(ValueError):
            LinkFault(cycle=-1, switch=(0, 0, 0), port=0)
        with pytest.raises(ValueError):
            LinkFault(cycle=5, switch=(0, 0, 0), port=0, until=4)


class TestCrc:
    def test_known_vector(self):
        # CRC-8/SMBUS check value for "123456789".
        assert crc8(b"123456789") == 0xF4

    def test_empty(self):
        assert crc8(b"") == 0

    def test_flit_checksum_deterministic_and_bounded(self):
        from repro.core.flit import make_packet

        (flit,) = make_packet(dest=3, size=1, src=1)
        a, b = flit_checksum(flit), flit_checksum(flit)
        assert a == b
        assert 0 <= a <= 0xFF

    def test_nonzero_syndrome_always_detected(self):
        from repro.core.flit import make_packet

        (flit,) = make_packet(dest=3, size=1, src=1)
        expected = flit_checksum(flit)
        for syndrome in range(1, 256):
            assert (expected ^ syndrome) != expected


class TestSampleLinkFaults:
    def test_deterministic_and_distinct(self):
        topo = FoldedClos(8, 2)
        a = sample_link_faults(topo, seed=3, count=4, cycle=100)
        b = sample_link_faults(topo, seed=3, count=4, cycle=100)
        assert a == b
        assert len({(f.switch, f.port) for f in a}) == 4

    def test_excludes_host_ports(self):
        topo = FoldedClos(8, 2)
        faults = sample_link_faults(topo, seed=1, count=8, cycle=0)
        for f in faults:
            assert topo.neighbor(f.switch, f.port).switch is not None

    def test_count_bound(self):
        topo = FoldedClos(4, 1)  # a single top-level switch: no links
        with pytest.raises(ValueError):
            sample_link_faults(topo, seed=1, count=1, cycle=0)


# ----------------------------------------------------------------------
# Credit primitives grown for fault support
# ----------------------------------------------------------------------


class TestStuckCounter:
    def test_stuck_masks_availability(self):
        c = CreditCounter(4)
        assert c.available
        c.stuck = True
        assert not c.available
        assert c.free == 4  # credits untouched: nothing is dropped
        c.stuck = False
        assert c.available

    def test_stuck_counter_still_restores(self):
        c = CreditCounter(2)
        c.consume()
        c.stuck = True
        c.restore()  # downstream drain continues while stuck
        assert c.free == 2


class TestDropHook:
    def test_drop_hook_claims_credit(self):
        pipe = DelayedCreditPipe(1)
        hits = []
        claimed = []
        # Test-only tap; real injectors install a picklable _DropHook.
        pipe.drop_hook = lambda sink: claimed.append(sink) or True  # lint: disable=R010
        pipe.send(0, lambda: hits.append(1))
        assert pipe.step(1) == 0
        assert hits == []
        assert len(claimed) == 1
        claimed[0]()  # the hook owner re-delivers (resync)
        assert hits == [1]

    def test_drop_hook_pass_through(self):
        pipe = DelayedCreditPipe(1)
        hits = []
        pipe.drop_hook = lambda sink: False  # lint: disable=R010
        pipe.send(0, lambda: hits.append(1))
        assert pipe.step(1) == 1
        assert hits == [1]


# ----------------------------------------------------------------------
# Switch-level injection
# ----------------------------------------------------------------------


def _run(router_cls, plan, load=0.5, cfg=CFG, **kw):
    sim = SwitchSimulation(router_cls(cfg), load=load, faults=plan, **kw)
    return sim.run(FAST)


class TestSwitchInjector:
    def test_refuses_disabled_plan(self):
        with pytest.raises(ValueError):
            SwitchFaultInjector(FaultPlan(), BufferedCrossbarRouter(CFG), 1)

    def test_zero_fault_run_identical_to_plain(self):
        """faults=None, and a disabled plan, are byte-identical."""
        plain = _run(BufferedCrossbarRouter, None)
        disabled = _run(BufferedCrossbarRouter, FaultPlan())
        assert plain == disabled

    def test_corruption_counts_and_recovers(self):
        plan = FaultPlan(corrupt_rate=0.05)
        r = _run(BufferedCrossbarRouter, plan)
        assert r.extra["stats.faults.corrupt"] > 0
        assert r.extra["stats.faults.retransmits"] > 0
        # Every corrupted transmission is eventually retransmitted.
        assert (r.extra["stats.faults.retransmits"]
                <= r.extra["stats.faults.corrupt"])

    def test_corruption_degrades_latency(self):
        clean = _run(BufferedCrossbarRouter, None, load=0.6)
        faulty = _run(
            BufferedCrossbarRouter, FaultPlan(corrupt_rate=0.1), load=0.6
        )
        assert faulty.avg_latency > clean.avg_latency

    def test_deterministic_replay(self):
        plan = FaultPlan(corrupt_rate=0.03, credit_loss_rate=0.01)
        a = _run(BufferedCrossbarRouter, plan)
        b = _run(BufferedCrossbarRouter, plan)
        assert a == b

    def test_active_set_equivalence_under_faults(self):
        plan = FaultPlan(corrupt_rate=0.03, credit_loss_rate=0.01)
        on = _run(BufferedCrossbarRouter, plan, load=0.3, active_set=True)
        off = _run(BufferedCrossbarRouter, plan, load=0.3, active_set=False)
        assert on == off

    def test_plan_seed_decouples_fault_stream(self):
        """plan.seed overrides the sim seed for fault draws only."""
        a = _run(BufferedCrossbarRouter, FaultPlan(corrupt_rate=0.05, seed=11))
        b = _run(BufferedCrossbarRouter, FaultPlan(corrupt_rate=0.05, seed=12))
        c = _run(BufferedCrossbarRouter, FaultPlan(corrupt_rate=0.05, seed=11))
        assert a == c
        assert a != b

    def test_credit_loss_sanitized_no_false_positive(self):
        """Injected credit losses must balance in the sanitizer's books
        (the injector ledger is counted as in-flight)."""
        plan = FaultPlan(credit_loss_rate=0.05, credit_resync_timeout=16)
        r = _run(BufferedCrossbarRouter, plan, sanitize=True)
        assert r.extra["stats.faults.credit_lost"] > 0
        assert r.extra["stats.faults.credit_resyncs"] > 0

    def test_credit_loss_sanitized_hierarchical(self):
        plan = FaultPlan(credit_loss_rate=0.05, credit_resync_timeout=16)
        r = _run(HierarchicalCrossbarRouter, plan, sanitize=True)
        assert r.extra["stats.faults.credit_lost"] > 0

    def test_corruption_sanitized_all_archs(self):
        plan = FaultPlan(corrupt_rate=0.05)
        for cls in (BaselineRouter, BufferedCrossbarRouter,
                    HierarchicalCrossbarRouter, VoqRouter):
            r = _run(cls, plan, sanitize=True)
            assert r.extra["stats.faults.corrupt"] > 0, cls.__name__


class TestStuckFaults:
    def test_stuck_crosspoint_degrades_and_recovers(self):
        plan = FaultPlan(
            stuck=(StuckFault(cycle=50, where=(2, 3), until=500),)
        )
        r = _run(BufferedCrossbarRouter, plan, load=0.7, sanitize=True)
        assert r.extra["stats.faults.stuck"] == 1
        assert r.extra["stats.faults.unstuck"] == 1
        # The run completes and still moves traffic around the wedge.
        assert r.throughput > 0.3

    def test_stuck_crosspoint_flag_set_and_cleared(self):
        from repro.faults import STUCK, UNSTUCK

        plan = FaultPlan(stuck=(StuckFault(cycle=5, where=(1, 2), until=9),))
        sim = SwitchSimulation(
            BufferedCrossbarRouter(CFG), load=0.0, faults=plan
        )
        injected, recovered = [], []
        sim.hooks.on_fault_inject(
            lambda kind, where, cycle: injected.append((kind, where, cycle))
        )
        sim.hooks.on_fault_recover(
            lambda kind, where, cycle: recovered.append((kind, where, cycle))
        )
        counters = sim._faults._resolve_crosspoint((1, 2))
        assert counters
        for _ in range(7):
            sim.step()
        assert all(c.stuck for c in counters)
        assert injected == [(STUCK, (1, 2), 5)]
        for _ in range(5):
            sim.step()
        assert not any(c.stuck for c in counters)
        assert recovered == [(UNSTUCK, (1, 2), 9)]

    def test_stuck_single_vc_lane(self):
        plan = FaultPlan(stuck=(StuckFault(cycle=0, where=(0, 0, 1)),))
        sim = SwitchSimulation(
            BufferedCrossbarRouter(CFG), load=0.0, faults=plan
        )
        sim.step()
        assert sim._faults._resolve_crosspoint((0, 0, 1))[0].stuck
        assert not sim._faults._resolve_crosspoint((0, 0, 0))[0].stuck

    def test_stuck_input_wedges_and_releases(self):
        plan = FaultPlan(
            stuck=(StuckFault(cycle=50, where=(1,), kind="input",
                              until=400),)
        )
        r = _run(HierarchicalCrossbarRouter, plan, load=0.5, sanitize=True)
        assert r.extra["stats.faults.stuck"] == 1
        assert r.extra["stats.faults.unstuck"] == 1

    def test_persistent_stuck_input_starves_port(self):
        """An input stuck with no `until` never delivers again; traffic
        on other inputs keeps flowing (graceful degradation)."""
        plan = FaultPlan(
            stuck=(StuckFault(cycle=0, where=(0,), kind="input"),)
        )
        sim = SwitchSimulation(
            BufferedCrossbarRouter(CFG), load=0.4, faults=plan
        )
        for _ in range(600):
            sim.step()
        assert sim.router.stats.flits_ejected > 0
        # Input 0 accepted a few flits into its buffers, but none of
        # them ever won switch allocation.
        assert (0, 0) in sim._engine._stuck_inputs

    def test_crosspoint_fault_rejected_without_crosspoints(self):
        """The schedule fires at the stuck cycle; a router with no
        crosspoint/subswitch buffers rejects it then."""
        plan = FaultPlan(stuck=(StuckFault(cycle=0, where=(0, 0)),))
        sim = SwitchSimulation(BaselineRouter(CFG), load=0.2, faults=plan)
        with pytest.raises(ValueError, match="crosspoint"):
            sim.step()

    def test_stuck_input_single_vc_lane(self):
        """A (port, vc) input address wedges one lane and releases it."""
        plan = FaultPlan(
            stuck=(StuckFault(cycle=0, where=(1, 0), kind="input",
                              until=10),)
        )
        sim = SwitchSimulation(
            BufferedCrossbarRouter(CFG), load=0.0, faults=plan
        )
        for _ in range(3):
            sim.step()
        assert sim._engine._input_stuck(1, 0)
        assert not sim._engine._input_stuck(1, 1)
        for _ in range(10):
            sim.step()
        assert not sim._engine._stuck_inputs

    def test_credit_loss_inert_without_credit_hardware(self):
        """Baseline has no internal credit pipes to tap; a credit-loss
        plan attaches harmlessly and drops nothing."""
        plan = FaultPlan(credit_loss_rate=0.5)
        sim = SwitchSimulation(BaselineRouter(CFG), load=0.4, faults=plan)
        assert not sim._faults.credit_capable
        for _ in range(300):
            sim.step()
        assert sim.router.stats.extra.get("faults.credit_lost", 0) == 0

    def test_address_naming_no_buffer_rejected(self):
        router = BufferedCrossbarRouter(CFG)
        plan = FaultPlan(stuck=(StuckFault(cycle=1, where=(0, 0)),))
        inj = SwitchFaultInjector(plan, router, 1)
        router._credits = [[]]  # hollow out row 0
        with pytest.raises(ValueError, match="names no buffer"):
            inj._resolve_crosspoint((0,))

    def test_flatten_counters_handles_dicts(self):
        from repro.faults.injector import _flatten_counters

        a, b = CreditCounter(1), CreditCounter(2)
        found = _flatten_counters({"x": [a], "w": b})
        assert found == [b, a]  # sorted by key

    def test_stick_unstick_base_api(self):
        router = BufferedCrossbarRouter(CFG)
        router.stick_input(2)  # all VCs
        assert all(router._input_stuck(2, vc) for vc in range(CFG.num_vcs))
        router.unstick_input(2)
        assert not router._stuck_inputs
        router.stick_input(3, vc=1)
        assert router._input_stuck(3, 1)
        assert not router._input_stuck(3, 0)
        router.unstick_input(3, vc=1)
        assert not router._stuck_inputs


# ----------------------------------------------------------------------
# Network-level injection
# ----------------------------------------------------------------------


class TestNetworkInjector:
    def test_zero_fault_run_identical_to_plain(self):
        kw = dict(warmup=200, measure=300, drain=3000)
        plain = ClosNetworkSimulation(NET, 0.3).run(**kw)
        disabled = ClosNetworkSimulation(NET, 0.3, faults=FaultPlan()).run(**kw)
        assert plain == disabled

    def test_dead_link_reroutes_sanitized(self):
        topo = ClosNetworkSimulation(NET, 0.3).topology
        links = sample_link_faults(topo, seed=7, count=2, cycle=100,
                                   until=700)
        plan = FaultPlan(credit_loss_rate=0.002, links=links)
        sim = ClosNetworkSimulation(NET, 0.3, sanitize=True, faults=plan)
        r = sim.run(warmup=300, measure=400, drain=4000)
        assert r.extra["stats.faults.link_down"] == 2
        assert r.extra["stats.faults.link_up"] == 2
        assert r.extra["stats.faults.reroutes"] > 0
        assert r.throughput > 0.15  # degraded, not dead

    def test_network_determinism(self):
        topo = ClosNetworkSimulation(NET, 0.3).topology
        links = sample_link_faults(topo, seed=5, count=1, cycle=50)
        plan = FaultPlan(corrupt_rate=0.02, credit_loss_rate=0.005,
                         links=links)
        kw = dict(warmup=200, measure=300, drain=3000)
        a = ClosNetworkSimulation(NET, 0.3, faults=plan).run(**kw)
        b = ClosNetworkSimulation(NET, 0.3, faults=plan).run(**kw)
        assert a == b

    def test_network_active_set_equivalence(self):
        plan = FaultPlan(corrupt_rate=0.02, credit_loss_rate=0.005)
        kw = dict(warmup=200, measure=300, drain=3000)
        on = ClosNetworkSimulation(NET, 0.2, faults=plan,
                                   active_set=True).run(**kw)
        off = ClosNetworkSimulation(NET, 0.2, faults=plan,
                                    active_set=False).run(**kw)
        assert on == off

    def test_unknown_switch_rejected(self):
        plan = FaultPlan(links=(LinkFault(0, ("no", "such"), 0),))
        with pytest.raises(ValueError, match="unknown switch"):
            ClosNetworkSimulation(NET, 0.2, faults=plan)

    def test_port_out_of_range_rejected(self):
        plan = FaultPlan(links=(LinkFault(0, (1, 0, 0), 99),))
        with pytest.raises(ValueError, match="out of range"):
            ClosNetworkSimulation(NET, 0.2, faults=plan)

    def test_refuses_disabled_plan(self):
        sim = ClosNetworkSimulation(NET, 0.2)
        with pytest.raises(ValueError):
            NetworkFaultInjector(FaultPlan(), sim, 1)

    def test_stuck_network_input_blocks_candidates(self):
        """NetworkRouter honors _stuck_inputs in candidate selection
        (the switch-level stuck-fault hook, exposed for extensions)."""
        sim = ClosNetworkSimulation(NET, 0.4)
        router = next(iter(sim.routers.values()))
        for port in range(router.config.num_ports):
            for vc in range(router.config.num_vcs):
                router._stuck_inputs.add((port, vc))
        accepts = []
        router.hooks.on_flit_move(
            lambda kind, flit, port, cycle: accepts.append(kind)
        )
        for _ in range(400):
            sim.step()
        # Flits entered the wedged router but never left it: every
        # accepted flit is still resident.
        assert accepts.count("accept") > 0
        assert router._resident == accepts.count("accept")
        assert all(kind == "accept" for kind in accepts)


    def test_network_hook_events_fire(self):
        """Credit-loss and link events reach the shared hook bus."""
        from repro.faults import CREDIT_RESYNC, LINK_DOWN, LINK_UP

        topo = ClosNetworkSimulation(NET, 0.3).topology
        links = sample_link_faults(topo, seed=9, count=1, cycle=50,
                                   until=300)
        plan = FaultPlan(credit_loss_rate=0.02, links=links)
        sim = ClosNetworkSimulation(NET, 0.3, faults=plan)
        injected, recovered = [], []
        sim.hooks.on_fault_inject(
            lambda kind, where, cycle: injected.append(kind)
        )
        sim.hooks.on_fault_recover(
            lambda kind, where, cycle: recovered.append(kind)
        )
        for _ in range(500):
            sim.step()
        assert LINK_DOWN in injected
        assert CREDIT_LOSS in injected
        assert LINK_UP in recovered
        assert CREDIT_RESYNC in recovered


class _ParallelPairTopo:
    """Two switches, two parallel links, no route_avoiding: exercises
    the injector's bounded re-roll fallback.  Host 0 sits on switch
    "A"; host 1 hangs off port 2 of switch "B"; ports 0 and 1 of "A"
    both reach "B"."""

    def __init__(self):
        from repro.network.topology import PortRef

        self._ref = PortRef

    def host_attachment(self, host):
        return self._ref(switch="A" if host == 0 else "B", port=2, host=None)

    def neighbor(self, switch, port):
        if switch == "A" and port in (0, 1):
            return self._ref(switch="B", port=port, host=None)
        return self._ref(switch=None, port=0, host=1)

    def route(self, src_host, dst_host, rng):
        return [rng.randrange(2), 2]


class TestRerollFallback:
    def _injector(self):
        sim = ClosNetworkSimulation(NET, 0.2)
        sid = next(iter(sim.routers))
        plan = FaultPlan(links=(LinkFault(cycle=10 ** 9, switch=sid,
                                          port=0),))
        return NetworkFaultInjector(plan, sim, seed=1)

    def test_rerolls_around_dead_link(self):
        from repro.core.rng import derive_rng

        inj = self._injector()
        topo = _ParallelPairTopo()
        inj.dead_links = {("A", 0)}
        rng = derive_rng(1, "test")
        for _ in range(30):
            ports = inj.route(topo, 0, 1, rng)
            assert ports[0] == 1  # never the dead port
        assert inj.counters["faults.reroutes"] > 0
        assert "faults.route_giveups" not in inj.counters

    def test_gives_up_when_no_clean_path(self):
        from repro.core.rng import derive_rng

        inj = self._injector()
        topo = _ParallelPairTopo()
        inj.dead_links = {("A", 0), ("A", 1)}
        rng = derive_rng(2, "test")
        ports = inj.route(topo, 0, 1, rng)
        assert ports[1] == 2  # blind route shipped anyway
        assert inj.counters["faults.route_giveups"] == 1


# ----------------------------------------------------------------------
# Dead-link-aware routing primitives
# ----------------------------------------------------------------------


class TestRouteAvoiding:
    def test_clos_avoids_dead_up_link(self):
        from repro.core.rng import derive_rng

        topo = FoldedClos(8, 2)
        rng = derive_rng(1, "test")
        leaf = topo.host_attachment(0).switch
        dead = {(leaf, topo.m)}  # first up port of host 0's leaf

        def link_ok(switch, port):
            return (switch, port) not in dead

        # Cross-subtree destination: the route must ascend, and must
        # never use the dead up port.
        dst = topo.num_hosts - 1
        for _ in range(20):
            ports = topo.route_avoiding(0, dst, rng, link_ok)
            assert ports is not None
            assert ports[0] != topo.m

    def test_clos_returns_none_when_cut_off(self):
        from repro.core.rng import derive_rng

        topo = FoldedClos(8, 2)
        rng = derive_rng(2, "test")
        leaf = topo.host_attachment(0).switch
        dead = {(leaf, topo.m + u) for u in range(topo.m)}  # all up ports

        def link_ok(switch, port):
            return (switch, port) not in dead

        assert topo.route_avoiding(
            0, topo.num_hosts - 1, rng, link_ok) is None

    def test_clos_route_avoiding_is_valid_path(self):
        from repro.core.rng import derive_rng

        topo = FoldedClos(8, 2)
        rng = derive_rng(3, "test")
        ports = topo.route_avoiding(1, 14, rng, lambda s, p: True)
        switch = topo.host_attachment(1).switch
        for port in ports[:-1]:
            switch = topo.neighbor(switch, port).switch
            assert switch is not None
        final = topo.neighbor(switch, ports[-1])
        assert final.switch is None and final.host == 14

    def test_mesh_permutes_dimension_order(self):
        from repro.core.rng import derive_rng

        topo = Mesh((3, 3))
        rng = derive_rng(4, "test")
        # Block the +x link out of (0, 0): the dimension-order route
        # (x first) dies, so the detour must correct y first.
        dead = {((0, 0), 0)}

        def link_ok(switch, port):
            return (switch, port) not in dead

        blind = topo.route(0, topo.num_hosts - 1, rng)
        assert blind[0] == 0  # x-first by default
        alt = topo.route_avoiding(0, topo.num_hosts - 1, rng, link_ok)
        assert alt is not None
        assert alt[0] == 2  # y-first detour

    def test_mesh_returns_none_when_cut_off(self):
        from repro.core.rng import derive_rng

        topo = Mesh((3, 3))
        rng = derive_rng(5, "test")
        # Sever every link out of the source switch.
        dead = {((0, 0), p) for p in range(4)}
        alt = topo.route_avoiding(
            0, topo.num_hosts - 1, rng, lambda s, p: (s, p) not in dead
        )
        assert alt is None


# ----------------------------------------------------------------------
# Observability: hooks, metrics, tracing, Chrome export
# ----------------------------------------------------------------------


class TestFaultObservability:
    def test_hook_events_fire(self):
        injected, recovered = [], []
        plan = FaultPlan(corrupt_rate=0.05, credit_loss_rate=0.02)
        sim = SwitchSimulation(
            BufferedCrossbarRouter(CFG), load=0.5, faults=plan
        )
        sim.hooks.on_fault_inject(
            lambda kind, where, cycle: injected.append((kind, where, cycle))
        )
        sim.hooks.on_fault_recover(
            lambda kind, where, cycle: recovered.append((kind, where, cycle))
        )
        for _ in range(600):
            sim.step()
        kinds = {k for k, _, _ in injected}
        assert CORRUPT in kinds
        assert CREDIT_LOSS in kinds
        assert recovered  # at least one retransmit or resync

    def test_metrics_collector_counts_faults(self):
        from repro.harness.metrics import MetricsCollector

        plan = FaultPlan(corrupt_rate=0.05)
        sim = SwitchSimulation(
            BufferedCrossbarRouter(CFG), load=0.5, faults=plan
        )
        metrics = MetricsCollector(CFG.radix).attach(sim)
        for _ in range(600):
            sim.step()
        assert metrics.fault_injects.get("corrupt", 0) > 0
        summary = metrics.summary()
        assert "faults injected" in summary
        assert "corrupt=" in summary

    def test_trace_collector_logs_fault_events(self):
        from repro.trace import TraceCollector

        plan = FaultPlan(corrupt_rate=0.05)
        collector = TraceCollector()
        sim = SwitchSimulation(
            BufferedCrossbarRouter(CFG), load=0.5, faults=plan,
            tracer=collector,
        )
        for _ in range(600):
            sim.step()
        assert collector.fault_injects > 0
        assert collector.fault_events
        direction, kind, where, cycle = collector.fault_events[0]
        assert direction in ("inject", "recover")
        assert kind == "corrupt"
        assert isinstance(where, tuple)

        from repro.routers.base import RouterStats

        stats = RouterStats()
        collector.fold_stats(stats)
        assert stats.extra["trace.fault_injects"] == collector.fault_injects

    def test_chrome_export_has_fault_track(self):
        import json

        from repro.trace import TraceCollector
        from repro.trace.chrome import chrome_trace_json

        plan = FaultPlan(corrupt_rate=0.08)
        collector = TraceCollector()
        sim = SwitchSimulation(
            BufferedCrossbarRouter(CFG), load=0.5, faults=plan,
            tracer=collector,
        )
        for _ in range(600):
            sim.step()
        doc = json.loads(chrome_trace_json(collector))
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instants
        assert all(e["pid"] == 1 for e in instants)
        assert any("corrupt" in e["name"] for e in instants)
        # The fault track replays identically for an identical second
        # run.  (Packet ids are globally monotonic, so the span events
        # differ in-process; the fault instants carry no packet ids.)
        collector2 = TraceCollector()
        sim2 = SwitchSimulation(
            BufferedCrossbarRouter(CFG), load=0.5, faults=plan,
            tracer=collector2,
        )
        for _ in range(600):
            sim2.step()
        doc2 = json.loads(chrome_trace_json(collector2))
        instants2 = [e for e in doc2["traceEvents"] if e["ph"] == "i"]
        assert instants2 == instants

    def test_no_fault_trace_has_no_fault_track(self):
        import json

        from repro.trace import TraceCollector
        from repro.trace.chrome import chrome_trace_json

        collector = TraceCollector()
        sim = SwitchSimulation(
            BufferedCrossbarRouter(CFG), load=0.5, tracer=collector
        )
        for _ in range(300):
            sim.step()
        doc = json.loads(chrome_trace_json(collector))
        assert not [e for e in doc["traceEvents"] if e["ph"] == "i"]
