"""Unit tests for the repro.analysis lint pass (rules R001-R007).

Each rule gets a positive fixture (the violation is found, with the
right code and line), a negative fixture (idiomatic code stays clean),
and a pragma fixture (``# lint: disable=R00x`` suppresses it).
"""

from pathlib import Path

import pytest

from repro.analysis.lint import (
    Finding,
    format_findings,
    lint_file,
    lint_paths,
    run_lint,
)
from repro.analysis.rules import all_rules
from repro.analysis.rules.config_rules import (
    ConfigMutationRule,
    MutableDefaultRule,
)
from repro.analysis.rules.determinism import (
    DirectRandomRule,
    NondeterminismRule,
)
from repro.analysis.rules.engine_rules import (
    ComputePhasePurityRule,
    HookEmissionPhaseRule,
)
from repro.analysis.rules.structure import RouterSubclassRule

REPO_ROOT = Path(__file__).resolve().parent.parent


def _lint(tmp_path, source, rules):
    path = tmp_path / "fixture.py"
    path.write_text(source)
    return lint_file(path, rules)


def _codes(findings):
    return [f.code for f in findings]


# ----------------------------------------------------------------------
# R001: no direct random
# ----------------------------------------------------------------------


class TestDirectRandom:
    RULES = [DirectRandomRule()]

    def test_import_random_flagged(self, tmp_path):
        findings = _lint(tmp_path, "import random\n", self.RULES)
        assert _codes(findings) == ["R001"]
        assert findings[0].line == 1

    def test_from_random_import_flagged(self, tmp_path):
        findings = _lint(
            tmp_path, "from random import randrange, shuffle\n", self.RULES
        )
        assert _codes(findings) == ["R001"]
        assert "randrange" in findings[0].message

    def test_attribute_calls_flagged_individually(self, tmp_path):
        src = "import random\n\nx = random.random()\nrandom.seed(3)\n"
        findings = _lint(tmp_path, src, self.RULES)
        # One for the import, one per drawing call.
        assert _codes(findings) == ["R001", "R001", "R001"]
        assert sorted(f.line for f in findings) == [1, 3, 4]

    def test_aliased_import_tracked(self, tmp_path):
        src = "import random as rnd\n\nx = rnd.randrange(4)\n"
        findings = _lint(tmp_path, src, self.RULES)
        assert _codes(findings) == ["R001", "R001"]

    def test_derive_rng_clean(self, tmp_path):
        src = (
            "from repro.core.rng import Rng, derive_rng\n"
            "\n"
            "rng = derive_rng(1, 'traffic', 3)\n"
            "x = rng.random()\n"
        )
        assert _lint(tmp_path, src, self.RULES) == []

    def test_pragma_suppresses(self, tmp_path):
        src = "import random  # lint: disable=R001\n"
        assert _lint(tmp_path, src, self.RULES) == []

    def test_bare_pragma_suppresses_all(self, tmp_path):
        src = "import random  # lint: disable\n"
        assert _lint(tmp_path, src, self.RULES) == []

    def test_rng_module_itself_exempt(self):
        rng_py = REPO_ROOT / "src" / "repro" / "core" / "rng.py"
        assert lint_file(rng_py, self.RULES) == []


# ----------------------------------------------------------------------
# R002: no nondeterminism
# ----------------------------------------------------------------------


class TestNondeterminism:
    RULES = [NondeterminismRule()]

    def test_wall_clock_flagged(self, tmp_path):
        src = "import time\n\nstart = time.time()\n"
        findings = _lint(tmp_path, src, self.RULES)
        assert _codes(findings) == ["R002"]
        assert findings[0].line == 3

    def test_datetime_now_flagged(self, tmp_path):
        src = "from datetime import datetime\n\nt = datetime.now()\n"
        assert _codes(_lint(tmp_path, src, self.RULES)) == ["R002"]

    def test_builtin_hash_flagged(self, tmp_path):
        findings = _lint(tmp_path, "h = hash('seed')\n", self.RULES)
        assert _codes(findings) == ["R002"]
        assert "salted" in findings[0].message

    def test_urandom_and_uuid4_flagged(self, tmp_path):
        src = "import os\nimport uuid\n\na = os.urandom(8)\nb = uuid.uuid4()\n"
        findings = _lint(tmp_path, src, self.RULES)
        assert _codes(findings) == ["R002", "R002"]

    def test_for_over_set_literal_flagged(self, tmp_path):
        src = "for x in {1, 2, 3}:\n    print(x)\n"
        findings = _lint(tmp_path, src, self.RULES)
        assert _codes(findings) == ["R002"]

    def test_for_over_set_named_variable_flagged(self, tmp_path):
        src = "seen = set()\nseen.add(1)\nfor x in seen:\n    print(x)\n"
        findings = _lint(tmp_path, src, self.RULES)
        assert _codes(findings) == ["R002"]
        assert findings[0].line == 3

    def test_list_over_set_flagged(self, tmp_path):
        src = "xs = list({3, 1, 2})\n"
        assert _codes(_lint(tmp_path, src, self.RULES)) == ["R002"]

    def test_sorted_set_clean(self, tmp_path):
        src = "seen = {3, 1}\nfor x in sorted(seen):\n    print(x)\n"
        assert _lint(tmp_path, src, self.RULES) == []

    def test_list_iteration_clean(self, tmp_path):
        src = "items = [3, 1]\nfor x in items:\n    print(x)\n"
        assert _lint(tmp_path, src, self.RULES) == []

    def test_pragma_suppresses(self, tmp_path):
        src = "seen = {1, 2}\nfor x in seen:  # lint: disable=R002\n    pass\n"
        assert _lint(tmp_path, src, self.RULES) == []


# ----------------------------------------------------------------------
# R003: no frozen-config mutation
# ----------------------------------------------------------------------


class TestConfigMutation:
    RULES = [ConfigMutationRule()]

    def test_attribute_assignment_flagged(self, tmp_path):
        src = "def f(config):\n    config.radix = 32\n"
        findings = _lint(tmp_path, src, self.RULES)
        assert _codes(findings) == ["R003"]
        assert findings[0].line == 2

    def test_self_config_attribute_flagged(self, tmp_path):
        src = "def f(self):\n    self.config.num_vcs = 8\n"
        assert _codes(_lint(tmp_path, src, self.RULES)) == ["R003"]

    def test_augmented_assignment_flagged(self, tmp_path):
        src = "def f(cfg):\n    cfg.radix += 1\n"
        assert _codes(_lint(tmp_path, src, self.RULES)) == ["R003"]

    def test_setattr_flagged(self, tmp_path):
        src = "def f(config):\n    setattr(config, 'radix', 8)\n"
        assert _codes(_lint(tmp_path, src, self.RULES)) == ["R003"]

    def test_object_setattr_flagged(self, tmp_path):
        src = "def f(cfg):\n    object.__setattr__(cfg, 'radix', 8)\n"
        assert _codes(_lint(tmp_path, src, self.RULES)) == ["R003"]

    def test_dataclasses_replace_clean(self, tmp_path):
        src = (
            "from dataclasses import replace\n"
            "\n"
            "def f(config):\n"
            "    return replace(config, radix=32)\n"
        )
        assert _lint(tmp_path, src, self.RULES) == []

    def test_binding_config_attribute_on_self_clean(self, tmp_path):
        src = "def __init__(self, config):\n    self.config = config\n"
        assert _lint(tmp_path, src, self.RULES) == []

    def test_pragma_suppresses(self, tmp_path):
        src = "def f(cfg):\n    cfg.radix = 16  # lint: disable=R003\n"
        assert _lint(tmp_path, src, self.RULES) == []


# ----------------------------------------------------------------------
# R004: no mutable defaults
# ----------------------------------------------------------------------


class TestMutableDefault:
    RULES = [MutableDefaultRule()]

    def test_list_default_flagged(self, tmp_path):
        src = "def f(xs=[]):\n    return xs\n"
        findings = _lint(tmp_path, src, self.RULES)
        assert _codes(findings) == ["R004"]
        assert "f" in findings[0].message

    def test_dict_and_set_defaults_flagged(self, tmp_path):
        src = "def f(a={}, b=set()):\n    return a, b\n"
        assert _codes(_lint(tmp_path, src, self.RULES)) == ["R004", "R004"]

    def test_factory_call_default_flagged(self, tmp_path):
        src = (
            "from collections import deque\n"
            "\n"
            "def f(q=deque()):\n"
            "    return q\n"
        )
        assert _codes(_lint(tmp_path, src, self.RULES)) == ["R004"]

    def test_kwonly_default_flagged(self, tmp_path):
        src = "def f(*, xs=[]):\n    return xs\n"
        assert _codes(_lint(tmp_path, src, self.RULES)) == ["R004"]

    def test_none_and_tuple_defaults_clean(self, tmp_path):
        src = "def f(a=None, b=(), c=3, d='x'):\n    return a, b, c, d\n"
        assert _lint(tmp_path, src, self.RULES) == []

    def test_pragma_suppresses(self, tmp_path):
        src = "def f(xs=[]):  # lint: disable=R004\n    return xs\n"
        assert _lint(tmp_path, src, self.RULES) == []


# ----------------------------------------------------------------------
# R005: Router subclass contract
# ----------------------------------------------------------------------

_ROUTER_NO_STEP = """\
from repro.routers.base import Router

class BrokenRouter(Router):
    def __init__(self, config):
        super().__init__(config)
"""

_ROUTER_NO_CHAIN = """\
from repro.routers.baseline import BaselineRouter

class TweakedRouter(BaselineRouter):
    def __init__(self, config):
        self.config = config
"""

_ROUTER_OK = """\
from repro.routers.base import Router

class FineRouter(Router):
    def __init__(self, config):
        super().__init__(config)

    def step(self):
        pass
"""

_ROUTER_ADVANCE_OK = """\
from repro.routers.base import Router

class TemplatedRouter(Router):
    def _advance(self):
        pass
"""


class TestRouterSubclass:
    RULES = [RouterSubclassRule()]

    def test_missing_step_hook_flagged(self, tmp_path):
        findings = _lint(tmp_path, _ROUTER_NO_STEP, self.RULES)
        assert _codes(findings) == ["R005"]
        assert "BrokenRouter" in findings[0].message

    def test_init_without_super_flagged(self, tmp_path):
        findings = _lint(tmp_path, _ROUTER_NO_CHAIN, self.RULES)
        assert _codes(findings) == ["R005"]
        assert "__init__" in findings[0].message

    def test_step_and_chain_clean(self, tmp_path):
        assert _lint(tmp_path, _ROUTER_OK, self.RULES) == []

    def test_advance_hook_satisfies_contract(self, tmp_path):
        assert _lint(tmp_path, _ROUTER_ADVANCE_OK, self.RULES) == []

    def test_unrelated_class_ignored(self, tmp_path):
        src = "class Helper:\n    def __init__(self):\n        self.x = 1\n"
        assert _lint(tmp_path, src, self.RULES) == []

    def test_explicit_base_init_call_accepted(self, tmp_path):
        src = (
            "from repro.routers.base import Router\n"
            "\n"
            "class OldStyleRouter(Router):\n"
            "    def __init__(self, config):\n"
            "        Router.__init__(self, config)\n"
            "\n"
            "    def step(self):\n"
            "        pass\n"
        )
        assert _lint(tmp_path, src, self.RULES) == []


# ----------------------------------------------------------------------
# R006: compute-phase purity
# ----------------------------------------------------------------------

_COMPUTE_MUTATES = """\
class LeakyComponent:
    def compute(self, cycle):
        self.cycle = cycle
        self.occupancy = self.occupancy + 1

    def commit(self, cycle):
        pass
"""

_COMPUTE_STAGES = """\
class CleanComponent:
    def compute(self, cycle):
        self.cycle = cycle
        self._staged_ejects = self._pipe.pop_ready(cycle)
        self._staged_credits = ()

    def commit(self, cycle):
        self.total += len(self._staged_ejects)
        self._staged_ejects = ()
"""


class TestComputePhasePurity:
    RULES = [ComputePhasePurityRule()]

    def test_committed_state_write_flagged(self, tmp_path):
        findings = _lint(tmp_path, _COMPUTE_MUTATES, self.RULES)
        assert _codes(findings) == ["R006"]
        assert "self.occupancy" in findings[0].message
        assert findings[0].line == 4

    def test_cycle_and_staged_writes_clean(self, tmp_path):
        assert _lint(tmp_path, _COMPUTE_STAGES, self.RULES) == []

    def test_augassign_and_subscript_writes_flagged(self, tmp_path):
        src = (
            "class C:\n"
            "    def compute(self, cycle):\n"
            "        self.count += 1\n"
            "        self.slots[0] = None\n"
            "    def commit(self, cycle):\n"
            "        pass\n"
        )
        findings = _lint(tmp_path, src, self.RULES)
        assert _codes(findings) == ["R006", "R006"]
        assert [f.line for f in findings] == [3, 4]

    def test_tuple_unpack_write_flagged(self, tmp_path):
        src = (
            "class C:\n"
            "    def compute(self, cycle):\n"
            "        self._staged_a, self.b = 1, 2\n"
            "    def commit(self, cycle):\n"
            "        pass\n"
        )
        findings = _lint(tmp_path, src, self.RULES)
        assert _codes(findings) == ["R006"]
        assert "self.b" in findings[0].message

    def test_class_without_commit_ignored(self, tmp_path):
        src = (
            "class NotAComponent:\n"
            "    def compute(self, cycle):\n"
            "        self.cache = cycle\n"
        )
        assert _lint(tmp_path, src, self.RULES) == []

    def test_local_and_non_self_writes_clean(self, tmp_path):
        src = (
            "class C:\n"
            "    def compute(self, cycle):\n"
            "        total = 0\n"
            "        other.attr = 1\n"
            "    def commit(self, cycle):\n"
            "        pass\n"
        )
        assert _lint(tmp_path, src, self.RULES) == []

    def test_pragma_suppresses(self, tmp_path):
        src = (
            "class C:\n"
            "    def compute(self, cycle):\n"
            "        self.scratch = 1  # lint: disable=R006\n"
            "    def commit(self, cycle):\n"
            "        pass\n"
        )
        assert _lint(tmp_path, src, self.RULES) == []


# ----------------------------------------------------------------------
# R007: hook emission phase
# ----------------------------------------------------------------------

_EMIT_IN_COMPUTE = """\
class ChattyComponent:
    def compute(self, cycle):
        self.cycle = cycle
        self.hooks.emit_stage_enter(None, "RC", 0, cycle)

    def commit(self, cycle):
        pass
"""

_EMIT_IN_COMMIT = """\
class QuietComponent:
    def compute(self, cycle):
        self.cycle = cycle
        self._staged_ejects = ()

    def commit(self, cycle):
        for flit in self._staged_ejects:
            self.hooks.emit_flit_move("eject", flit, 0, cycle)
"""


class TestHookEmissionPhase:
    RULES = [HookEmissionPhaseRule()]

    def test_emit_in_compute_flagged(self, tmp_path):
        findings = _lint(tmp_path, _EMIT_IN_COMPUTE, self.RULES)
        assert _codes(findings) == ["R007"]
        assert "emit_stage_enter" in findings[0].message
        assert findings[0].line == 4

    def test_emit_in_commit_clean(self, tmp_path):
        assert _lint(tmp_path, _EMIT_IN_COMMIT, self.RULES) == []

    def test_aliased_bus_still_flagged(self, tmp_path):
        src = (
            "class C:\n"
            "    def compute(self, cycle):\n"
            "        hooks = self.hooks\n"
            "        hooks.emit_grant(None, 0, cycle)\n"
            "    def commit(self, cycle):\n"
            "        pass\n"
        )
        findings = _lint(tmp_path, src, self.RULES)
        assert _codes(findings) == ["R007"]
        assert "emit_grant" in findings[0].message

    def test_emit_in_compute_helper_not_flagged(self, tmp_path):
        # R007 is syntactic, like R006: only the compute body is
        # scanned, not helpers it calls (the runtime sanitizer covers
        # dynamic escape hatches).
        src = (
            "class C:\n"
            "    def compute(self, cycle):\n"
            "        self._scan(cycle)\n"
            "    def _scan(self, cycle):\n"
            "        self.hooks.emit_credit(0, 0, cycle)\n"
            "    def commit(self, cycle):\n"
            "        pass\n"
        )
        assert _lint(tmp_path, src, self.RULES) == []

    def test_class_without_commit_ignored(self, tmp_path):
        src = (
            "class NotAComponent:\n"
            "    def compute(self, cycle):\n"
            "        self.hooks.emit_cycle_start(cycle)\n"
        )
        assert _lint(tmp_path, src, self.RULES) == []

    def test_non_emit_calls_clean(self, tmp_path):
        src = (
            "class C:\n"
            "    def compute(self, cycle):\n"
            "        self._staged = self.pipe.pop_ready(cycle)\n"
            "    def commit(self, cycle):\n"
            "        pass\n"
        )
        assert _lint(tmp_path, src, self.RULES) == []

    def test_pragma_suppresses(self, tmp_path):
        src = (
            "class C:\n"
            "    def compute(self, cycle):\n"
            "        self.hooks.emit_cycle_start(cycle)  "
            "# lint: disable=R007\n"
            "    def commit(self, cycle):\n"
            "        pass\n"
        )
        assert _lint(tmp_path, src, self.RULES) == []


# ----------------------------------------------------------------------
# Runner behaviour
# ----------------------------------------------------------------------


class TestRunner:
    def test_finding_format(self):
        f = Finding(path="src/x.py", line=12, code="R001", message="bad")
        assert f.format() == "src/x.py:12: R001 bad"

    def test_format_findings_one_per_line(self):
        fs = [
            Finding(path="a.py", line=1, code="R001", message="m1"),
            Finding(path="b.py", line=2, code="R002", message="m2"),
        ]
        assert format_findings(fs) == "a.py:1: R001 m1\nb.py:2: R002 m2"

    def test_syntax_error_reported_as_e999(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        findings = lint_file(path, all_rules())
        assert _codes(findings) == ["E999"]

    def test_lint_paths_sorted_and_recursive(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "b.py").write_text("import random\n")
        (tmp_path / "a.py").write_text("x = hash('k')\n")
        findings = lint_paths([str(tmp_path)])
        assert [(Path(f.path).name, f.code) for f in findings] == [
            ("a.py", "R002"),
            ("b.py", "R001"),
        ]

    def test_run_lint_exit_codes(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        assert run_lint([str(dirty)]) == 1
        out = capsys.readouterr().out
        assert f"{dirty}:1: R001" in out
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert run_lint([str(clean)]) == 0

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            lint_paths(["definitely/not/a/path"])

    def test_repo_source_tree_is_clean(self):
        src = REPO_ROOT / "src"
        assert lint_paths([str(src)]) == []
