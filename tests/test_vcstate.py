"""Tests for the output virtual-channel ownership ledger."""

import pytest

from repro.core.vcstate import OutputVcState


class TestOutputVcState:
    def test_starts_all_free(self):
        s = OutputVcState(4)
        assert s.free_vcs() == [0, 1, 2, 3]
        assert s.any_free()
        assert all(s.is_free(vc) for vc in range(4))

    def test_allocate_release_cycle(self):
        s = OutputVcState(2)
        s.allocate(0, packet_id=7)
        assert not s.is_free(0)
        assert s.owner(0) == 7
        assert s.free_vcs() == [1]
        s.release(0, packet_id=7)
        assert s.is_free(0)

    def test_reallocate_same_packet_idempotent(self):
        s = OutputVcState(1)
        s.allocate(0, 3)
        s.allocate(0, 3)  # no error
        assert s.owner(0) == 3

    def test_conflicting_allocate_raises(self):
        s = OutputVcState(1)
        s.allocate(0, 3)
        with pytest.raises(RuntimeError):
            s.allocate(0, 4)

    def test_release_by_non_owner_raises(self):
        s = OutputVcState(1)
        s.allocate(0, 3)
        with pytest.raises(RuntimeError):
            s.release(0, 4)

    def test_release_unowned_raises(self):
        with pytest.raises(RuntimeError):
            OutputVcState(1).release(0, 1)

    def test_any_free_false_when_exhausted(self):
        s = OutputVcState(2)
        s.allocate(0, 1)
        s.allocate(1, 2)
        assert not s.any_free()
        assert s.free_vcs() == []

    def test_invalid_num_vcs(self):
        with pytest.raises(ValueError):
            OutputVcState(0)
