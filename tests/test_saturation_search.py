"""Tests for the saturation-load binary search and network sweeps."""

import pytest

from repro.core.config import RouterConfig
from repro.harness.experiment import (
    SweepSettings,
    find_saturation_load,
    saturation_throughput,
)
from repro.network import NetworkConfig, run_network_sweep
from repro.routers.buffered import BufferedCrossbarRouter
from repro.routers.distributed import DistributedRouter

CFG = RouterConfig(radix=16, num_vcs=4, subswitch_size=4, local_group_size=4)
SETTINGS = SweepSettings(warmup=300, measure=500, drain=4000)


class TestFindSaturationLoad:
    def test_buffered_saturates_near_full_load(self):
        load = find_saturation_load(
            BufferedCrossbarRouter, CFG, settings=SETTINGS, tolerance=0.05
        )
        assert load > 0.85

    def test_distributed_saturates_earlier(self):
        buffered = find_saturation_load(
            BufferedCrossbarRouter, CFG, settings=SETTINGS, tolerance=0.05
        )
        distributed = find_saturation_load(
            DistributedRouter, CFG, settings=SETTINGS, tolerance=0.05
        )
        assert distributed < buffered

    def test_agrees_with_saturation_throughput(self):
        """The knee of the latency curve sits near the accepted
        throughput plateau."""
        sat_settings = SweepSettings(warmup=400, measure=800, drain=50)
        knee = find_saturation_load(
            DistributedRouter, CFG, settings=SETTINGS, tolerance=0.05
        )
        plateau = saturation_throughput(
            DistributedRouter, CFG, settings=sat_settings
        )
        assert abs(knee - plateau) < 0.15

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            find_saturation_load(
                BufferedCrossbarRouter, CFG, settings=SETTINGS, tolerance=0.0
            )


class TestSaturationHelperPlumbing:
    """The saturation helpers used to silently drop ``scheduler`` (and
    ``find_saturation_load`` also ``avg_burst``), so every inner run
    fell back to the cycle scheduler and the default burst length."""

    def _record_kwargs(self, monkeypatch):
        from repro.harness import experiment

        seen = []
        real = experiment.SwitchSimulation

        class Recorder(real):
            def __init__(self, *args, **kwargs):
                seen.append(dict(kwargs))
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(experiment, "SwitchSimulation", Recorder)
        return seen

    def test_saturation_throughput_forwards_scheduler(self, monkeypatch):
        seen = self._record_kwargs(monkeypatch)
        saturation_throughput(
            BufferedCrossbarRouter, CFG, settings=SETTINGS,
            scheduler="event",
        )
        assert seen and all(k["scheduler"] == "event" for k in seen)

    def test_find_saturation_load_forwards_both(self, monkeypatch):
        seen = self._record_kwargs(monkeypatch)
        find_saturation_load(
            BufferedCrossbarRouter, CFG, settings=SETTINGS, tolerance=0.2,
            injection="onoff", avg_burst=3.0, scheduler="event",
        )
        assert seen
        assert all(k["scheduler"] == "event" for k in seen)
        assert all(k["avg_burst"] == 3.0 for k in seen)

    def test_event_scheduler_matches_cycle(self):
        """Event-driven fast-forward is semantics-preserving, so both
        helpers must report identical numbers under either scheduler."""
        thr = {
            sched: saturation_throughput(
                BufferedCrossbarRouter, CFG, settings=SETTINGS, load=0.6,
                scheduler=sched,
            )
            for sched in ("cycle", "event")
        }
        assert thr["cycle"] == thr["event"]
        knee = {
            sched: find_saturation_load(
                BufferedCrossbarRouter, CFG, settings=SETTINGS,
                tolerance=0.1, scheduler=sched,
            )
            for sched in ("cycle", "event")
        }
        assert knee["cycle"] == knee["event"]


class TestNetworkSweep:
    def test_curve_shape(self):
        sweep = run_network_sweep(
            NetworkConfig(radix=8, levels=2, num_vcs=2),
            loads=[0.1, 0.5],
            label="clos",
            warmup=300, measure=400, drain=3000,
        )
        assert sweep.label == "clos"
        assert len(sweep.results) == 2
        assert sweep.results[1].avg_latency > sweep.results[0].avg_latency

    def test_default_label(self):
        sweep = run_network_sweep(
            NetworkConfig(radix=8, levels=2), loads=[0.1],
            warmup=200, measure=300, drain=2000,
        )
        assert sweep.label == "network"

    def test_with_explicit_topology(self):
        from repro.network import Mesh

        sweep = run_network_sweep(
            NetworkConfig(radix=6, num_vcs=2), loads=[0.2],
            topology=Mesh((3, 3)),
            warmup=200, measure=300, drain=3000,
        )
        assert sweep.results[0].packets_measured > 0
