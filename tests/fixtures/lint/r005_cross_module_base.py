"""R005 fixture, file 1/2: a clean intermediate Router subclass.

``MeshSwitch`` deliberately does *not* end in ``Router`` — the
per-file rule's name heuristic cannot see that subclasses of it are in
the Router family; the project index can.
"""

from repro.routers.base import Router


class MeshSwitch(Router):
    def _advance(self):
        pass
