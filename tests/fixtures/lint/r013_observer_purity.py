"""R013 fixture: scheduler probes (``busy``/``next_event``) that
mutate state, directly or through their call chains."""


class CountingComponent:
    def compute(self, cycle):
        self.cycle = cycle

    def commit(self, cycle):
        pass

    def busy(self):
        self.polls = self.polls + 1
        return bool(self.pending)


class RefreshingComponent:
    def compute(self, cycle):
        self.cycle = cycle

    def commit(self, cycle):
        pass

    def busy(self):
        return False

    def next_event(self, now):
        self._refresh(now)
        return self.horizon

    def _refresh(self, now):
        self.horizon = now + 1


class CleanComponent:
    def compute(self, cycle):
        self.cycle = cycle

    def commit(self, cycle):
        pass

    def busy(self):
        return bool(self.pending)

    def next_event(self, now):
        return self._peek(now)

    def _peek(self, now):
        return now + 1 if self.pending else None
