"""R010 fixture: unpicklable values stored on component state."""

import threading


class HoardingComponent:
    def __init__(self, path):
        self.on_eject = lambda flit: flit
        self.pending = (n for n in range(4))
        self.journal = open(path)
        self.guard = threading.Lock()
        self.callback = self.commit
        self.sink = self._make_sink()

    def _make_sink(self):
        def sink(value):
            return (self, value)

        return sink

    def compute(self, cycle):
        self.cycle = cycle

    def commit(self, cycle):
        pass


class Wirer:
    def wire(self, peer):
        peer.handler = lambda value: value
