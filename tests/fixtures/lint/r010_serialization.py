"""R010 fixture: unpicklable values stored on component state."""

import threading


class HoardingComponent:
    def __init__(self, path):
        self.on_eject = lambda flit: flit
        self.pending = (n for n in range(4))
        self.journal = open(path)
        self.guard = threading.Lock()
        self.callback = self.commit
        self.sink = self._make_sink()

    def _make_sink(self):
        def sink(value):
            return (self, value)

        return sink

    def compute(self, cycle):
        self.cycle = cycle

    def commit(self, cycle):
        pass


class Wirer:
    def wire(self, peer):
        peer.handler = lambda value: value


class ForgetfulSnapshot:
    """Explicit snapshot that silently drops ``__init__`` state."""

    SNAPSHOT_WIRING = ("hooks",)

    def __init__(self, hooks):
        self.hooks = hooks
        self.cycle = 0
        self.backlog = []

    def snapshot(self):
        return {"cycle": self.cycle}

    def restore(self, state):
        self.cycle = state["cycle"]


class CompleteSnapshot:
    """Negative control: every attribute captured or declared wiring."""

    SNAPSHOT_WIRING = ("hooks",)

    def __init__(self, hooks):
        self.hooks = hooks
        self.cycle = 0
        self.backlog = []

    def snapshot(self):
        return {"cycle": self.cycle, "backlog": list(self.backlog)}


class OptedOutSnapshot:
    """Negative control: a raise-only stub opts out of the protocol."""

    def __init__(self):
        self.backlog = []

    def snapshot(self):
        raise ValueError("not checkpointable")
