"""E999 fixture: an unparseable module still gets a located finding."""

def broken(:
