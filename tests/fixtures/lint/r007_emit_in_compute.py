"""R007 fixture: hook emission from the speculative compute phase."""


class ChattyComponent:
    def compute(self, cycle):
        self.cycle = cycle
        self.hooks.emit_stage_enter(None, "RC", 0, cycle)

    def commit(self, cycle):
        pass
