"""R003 fixture: mutating a frozen RouterConfig."""


def widen(config):
    config.radix = 64
    return config
