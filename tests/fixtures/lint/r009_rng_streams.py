"""R009 fixture: duplicate, unstable, and module-level RNG streams."""

from repro.core.rng import derive_rng

SHARED = derive_rng(1, "corpus", "shared")


def make_streams(seed, component):
    first = derive_rng(seed, "corpus", "traffic")
    second = derive_rng(seed, "corpus", "traffic")
    unstable = derive_rng(seed, id(component))
    unordered = derive_rng(seed, {1, 2, 3})
    return first, second, unstable, unordered
