"""R012 fixture: suppressions that suppress nothing."""

import random  # lint: disable=R001

width = 16  # lint: disable=R001
depth = 8  # lint: disable
