"""R004 fixture: mutable default argument."""


def collect(items=[]):
    items.append(1)
    return items
