"""R014 fixture: traffic probes (``TrafficPattern.dest`` /
``Workload.eligible``) that mutate state, directly or through their
call chains."""


class TrafficPattern:
    def dest(self, src, rng):
        raise NotImplementedError


class RotatingPattern(TrafficPattern):
    def dest(self, src, rng):
        self.offset = self.offset + 1
        return (src + self.offset) % self.radix


class CachingPattern(TrafficPattern):
    def dest(self, src, rng):
        return self._lookup(src, rng)

    def _lookup(self, src, rng):
        self.cache[src] = rng.randrange(self.radix)
        return self.cache[src]


class CleanPattern(TrafficPattern):
    def dest(self, src, rng):
        return self._draw(src, rng)

    def _draw(self, src, rng):
        return (src + rng.randrange(self.radix - 1) + 1) % self.radix


class Workload:
    def eligible(self, rank, now):
        return None


class AdvancingWorkload(Workload):
    def eligible(self, rank, now):
        if self.heaps[rank]:
            self.cursor[rank] = now
            return self.heaps[rank][0]
        return None


class CleanWorkload(Workload):
    def eligible(self, rank, now):
        if self.heaps[rank]:
            ready = self.heaps[rank][0]
            return ready if ready > now else now
        return None
