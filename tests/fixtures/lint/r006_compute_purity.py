"""R006 fixture: compute mutates committed state directly."""


class LeakyComponent:
    def compute(self, cycle):
        self.cycle = cycle
        self.occupancy = self.occupancy + 1

    def commit(self, cycle):
        pass
