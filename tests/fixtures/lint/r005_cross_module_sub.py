"""R005 fixture, file 2/2: an indirect Router subclass that forgets
to chain ``__init__`` — invisible per-file, caught whole-program —
and a direct subclass missing the per-cycle step hook."""

from r005_cross_module_base import MeshSwitch
from repro.routers.base import Router


class BadSwitch(MeshSwitch):
    def __init__(self, config):
        self.config = config


class StalledSwitch(Router):
    def drain(self):
        return ()
