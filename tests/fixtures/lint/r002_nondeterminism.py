"""R002 fixture: wall clock and unordered-set iteration."""

import time

started = time.time()

for item in {3, 1, 2}:
    print(item)
