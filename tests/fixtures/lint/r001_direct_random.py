"""R001 fixture: direct ``random`` use outside repro.core.rng."""

import random

choice = random.random()
