"""R011 fixture: emit/subscribe sites against the event registry.

The ``EngineHooks`` class below *is* the registry for the corpus — the
index recovers events from its ``emit_*`` signatures, exactly as it
does from :class:`repro.engine.hooks.EngineHooks` when linting ``src``.
"""


class EngineHooks:
    def emit_cycle_start(self, cycle):
        pass

    def emit_flit_move(self, kind, flit, port, cycle):
        pass

    def emit_grant(self, flit, out_port, cycle):
        pass

    def emit_credit(self, port, vc, cycle):
        pass

    def emit_stage_enter(self, flit, stage, port, cycle):
        pass

    def on_cycle_start(self, fn):
        pass

    def on_grant(self, fn):
        pass

    def on_credit(self, fn):
        pass


def log_grant(flit, out_port, cycle):
    return (flit, out_port, cycle)


def log_credit(port):
    return port


hooks = EngineHooks()

hooks.emit_cycle_start(0)
hooks.emit_flit_moved("accept", None, 0, 0)
hooks.emit_grant(None, 0, 1, 2)
hooks.emit_credit(0, vc=1)
hooks.emit_stage_enter(None, "ST", port=3, lane=4)

hooks.on_cycle_started(log_grant)
hooks.on_grant(log_grant)
hooks.on_grant(lambda flit: None)
hooks.on_credit(log_credit)
