"""R008 fixture: impurity reached through compute call chains, and a
commit that writes another component's compute-read state."""


class RacyComponent:
    def compute(self, cycle):
        self.cycle = cycle
        self._staged = self._scan(cycle)

    def _scan(self, cycle):
        self.seen = self.seen + 1
        return ()

    def commit(self, cycle):
        self._staged = ()


class DeepComponent:
    def compute(self, cycle):
        self._staged = self._gather()

    def _gather(self):
        return self._drain()

    def _drain(self):
        self.hooks.emit_grant(None, 0, 0)
        return ()

    def commit(self, cycle):
        pass


class ReaderComponent:
    def compute(self, cycle):
        self.cycle = cycle
        self._staged = len(self.queue)

    def commit(self, cycle):
        pass


class IntruderComponent:
    def compute(self, cycle):
        self.cycle = cycle

    def commit(self, cycle):
        peer = self.peer
        peer.queue = ()
