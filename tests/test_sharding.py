"""Differential harness: sharded Clos simulation vs. the serial one.

The sharded engine's whole contract is *byte-identity*: running a
folded-Clos simulation split across 1, 2, or 4 worker processes must
produce exactly the results of the serial :class:`NetworkSimulation` —
the :class:`RunResult` tuple, every ``stats.*`` extra (fault counters
included), the canonically-ordered fault action log, and the Chrome
trace export, under both scheduler modes, with a link-fault plan and a
collective workload in play.  These tests pin that contract; any
divergence is a sharding bug by definition, never an accepted delta.

Failure handling is covered too: a worker crash must surface promptly
in the parent as a :class:`ShardWorkerError` carrying the original
traceback (no hang, no silent partial results), and impossible shard
counts must be rejected at construction.
"""

import pytest

from repro.core.flit import reset_packet_ids
from repro.engine.shard import ShardWorkerError, partition
from repro.faults import FaultPlan, LinkFault
from repro.network.netsim import NetworkConfig, NetworkSimulation
from repro.network.sharded import ShardedNetworkSimulation
from repro.trace import TraceCollector
from repro.trace.chrome import chrome_trace_json
from repro.workloads import all_reduce

CFG = dict(radix=8, levels=2, seed=5)


def _switches():
    config = NetworkConfig(**CFG)
    probe = NetworkSimulation(config, load=0.0)
    return list(probe.topology.switch_ids())


def _fault_plan(switches):
    return FaultPlan(
        corrupt_rate=0.02,
        credit_loss_rate=0.01,
        links=(
            LinkFault(cycle=60, switch=switches[1], port=2, until=200),
            LinkFault(cycle=90, switch=switches[-1], port=0, until=260),
        ),
    )


def _canon_faults(tracer):
    """Fault events in shard-independent order.

    Workers interleave per-shard event streams, so only the *set* per
    cycle is defined; sort by (cycle, direction, kind, where) exactly
    as the Chrome exporter does.
    """
    return sorted(
        tracer.fault_events, key=lambda e: (e[3], e[0], e[1], str(e[2]))
    )


def _run(shards, scheduler, workload=False, faults=True, batch=False):
    """One full observation: result, fault log, chrome bytes, tracer."""
    reset_packet_ids()
    config = NetworkConfig(batch_hot_path=batch, **CFG)
    switches = _switches()
    tracer = TraceCollector(capacity=100000)
    kw = dict(
        faults=_fault_plan(switches) if faults else None,
        scheduler=scheduler,
        tracer=tracer,
        trace_switch=switches[2],
        workload=all_reduce(16, size=2) if workload else None,
    )
    load = 0.0 if workload else 0.3
    if shards == 0:
        sim = NetworkSimulation(config, load=load, **kw)
        close = lambda: None  # noqa: E731
    else:
        sim = ShardedNetworkSimulation(config, load=load, shards=shards, **kw)
        close = sim.close
    try:
        if workload:
            result = sim.run_workload(max_cycles=20000)
        else:
            result = sim.run(warmup=80, measure=150, drain=400)
    finally:
        close()
    return result, _canon_faults(tracer), chrome_trace_json(tracer), tracer


class TestByteIdentity:
    @pytest.mark.parametrize("scheduler", ["cycle", "event"])
    @pytest.mark.parametrize("workload", [False, True])
    def test_shards_match_serial(self, scheduler, workload):
        ref, ref_faults, ref_chrome, ref_tr = _run(0, scheduler, workload)
        for shards in (1, 2, 4):
            got, got_faults, got_chrome, got_tr = _run(
                shards, scheduler, workload
            )
            assert got == ref
            assert got.extra == ref.extra
            assert got_faults == ref_faults
            assert got_tr.cycles == ref_tr.cycles
            assert got_chrome == ref_chrome

    @pytest.mark.parametrize("scheduler", ["cycle", "event"])
    def test_batched_shards_match_scalar_serial(self, scheduler):
        """batch_hot_path rides the config into worker processes; a
        sharded batched run must match the serial scalar reference —
        results, fault log, and trace bytes."""
        ref, ref_faults, ref_chrome, _ = _run(0, scheduler)
        got, got_faults, got_chrome, _ = _run(2, scheduler, batch=True)
        assert got == ref
        assert got.extra == ref.extra
        assert got_faults == ref_faults
        assert got_chrome == ref_chrome

    def test_heavy_credit_loss_counters_match(self):
        """The cross-shard credit drop/resync path, non-vacuously: the
        rates are high enough that remote credits are lost and resynced
        across the pipe protocol, and every fault counter must still
        land exactly where the serial injector puts it."""
        plan = FaultPlan(corrupt_rate=0.03, credit_loss_rate=0.08)
        ref = None
        for shards in (0, 2, 4):
            reset_packet_ids()
            config = NetworkConfig(radix=8, levels=2, seed=11)
            if shards == 0:
                sim = NetworkSimulation(
                    config, load=0.5, faults=plan, scheduler="event"
                )
                result = sim.run(warmup=100, measure=300, drain=800)
            else:
                sim = ShardedNetworkSimulation(
                    config, load=0.5, shards=shards, faults=plan,
                    scheduler="event",
                )
                try:
                    result = sim.run(warmup=100, measure=300, drain=800)
                finally:
                    sim.close()
            if ref is None:
                ref = (result, result.extra)
                # The scenario must actually exercise the path.
                assert result.extra["stats.faults.credit_lost"] > 0
                assert result.extra["stats.faults.credit_resyncs"] > 0
            else:
                assert (result, result.extra) == ref


class TestFailureModes:
    def test_worker_crash_propagates_traceback(self):
        """A dying worker must fail the run (not hang at the phase
        barrier) and carry the worker's own traceback to the caller."""
        config = NetworkConfig(**CFG)
        sim = ShardedNetworkSimulation(
            config, load=0.3, shards=2, _crash_at=(1, 50)
        )
        try:
            with pytest.raises(ShardWorkerError) as err:
                sim.run(warmup=80, measure=150, drain=400)
        finally:
            sim.close()
        assert "injected shard crash at cycle 50" in str(err.value)
        assert "shard worker 1 failed" in str(err.value)

    def test_more_shards_than_switches_rejected(self):
        config = NetworkConfig(**CFG)  # radix 8, 2 levels -> 12 switches
        with pytest.raises(ValueError, match="shards must be <="):
            ShardedNetworkSimulation(config, load=0.3, shards=64)

    def test_partition_is_contiguous_and_balanced(self):
        blocks = partition(list(range(10)), 4)
        assert [len(b) for b in blocks] == [2, 3, 2, 3]
        assert [x for block in blocks for x in block] == list(range(10))
        with pytest.raises(ValueError):
            partition([1, 2], 3)

    def test_sharded_simulation_refuses_snapshot(self):
        """Checkpointing goes through the serial front-end; the sharded
        engine opts out of the protocol explicitly (R010 raise-only)."""
        config = NetworkConfig(**CFG)
        sim = ShardedNetworkSimulation(config, load=0.3, shards=2)
        try:
            with pytest.raises(ValueError):
                sim.snapshot()
            with pytest.raises(ValueError):
                sim.restore({})
        finally:
            sim.close()

    def test_workers_not_reusable_after_finish(self):
        config = NetworkConfig(**CFG)
        sim = ShardedNetworkSimulation(config, load=0.3, shards=2)
        try:
            sim.run(warmup=40, measure=60, drain=300)
            with pytest.raises(RuntimeError, match="already reaped"):
                sim.start_run(warmup=40, measure=60, drain=300)
        finally:
            sim.close()
