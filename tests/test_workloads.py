"""Dependency-driven workloads: DAG semantics, families, equivalence.

The workload layer replaces the open-loop injection process with a
message DAG, and it must obey the same contract as everything else in
the repo: byte-identical results under the cycle stepper and the
event-driven fast-forward scheduler, for every family (request/reply,
collectives, trace replay), with tracing and fault plans composed in.
These tests pin the DAG semantics (eligibility, delivery-releases,
think time), the collective shapes (send/receive counts, acyclicity —
property-tested), the replay parsers (CSV and Chrome round-trip), and
a scheduled dead link measurably stretching an all-reduce.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import RouterConfig
from repro.core.flit import reset_packet_ids
from repro.faults import FaultPlan, sample_link_faults
from repro.harness.experiment import SwitchSimulation
from repro.network.netsim import ClosNetworkSimulation, NetworkConfig
from repro.network.topology import FoldedClos
from repro.routers.baseline import BaselineRouter
from repro.workloads import (
    WorkloadBuilder,
    all_reduce,
    all_to_all,
    broadcast,
    from_chrome_trace,
    from_csv,
    load_trace,
    parse_chrome_rows,
    parse_csv_rows,
    request_reply,
    transformer_decode,
)

RESULT_FIELDS = (
    "offered_load", "avg_latency", "p99_latency", "max_latency",
    "throughput", "packets_measured", "cycles", "saturated",
)

REPLAY_CSV = [
    "cycle,src,dest,size,flow",
    "# two pipelined flows plus unlabeled fillers",
    "0,0,5,2,w.a",
    "0,3,6,1,w.b",
    "2,1,4,3,",
    "7,2,0,2,w.a",
    "9,6,1,1",
    "12,5,3,2,w.b",
]

REPLAY_CSV_SMALL = [
    "cycle,src,dest,size,flow",
    "0,0,2,2,s.a",
    "1,1,3,1,",
    "4,3,0,2,s.a",
    "6,2,1,1,s.b",
]


def _config(seed: int = 7) -> RouterConfig:
    return RouterConfig(radix=8, num_vcs=2, subswitch_size=4,
                        local_group_size=4, seed=seed)


def _snap(result) -> dict:
    import math

    snap = {f: getattr(result, f) for f in RESULT_FIELDS}
    snap.update({
        k: v for k, v in result.extra.items()
        if not k.startswith("stats.engine.")
    })
    # NaN (empty-sample latency) never equals itself; normalize so
    # byte-identical runs compare equal.
    return {
        k: None if isinstance(v, float) and math.isnan(v) else v
        for k, v in snap.items()
    }


def _switch_snapshot(factory, scheduler: str, seed: int = 7) -> dict:
    reset_packet_ids()
    sim = SwitchSimulation(
        BaselineRouter(_config(seed)), workload=factory(),
        scheduler=scheduler,
    )
    return _snap(sim.run_workload(max_cycles=50_000))


def _network_snapshot(factory, scheduler: str, radix: int = 4,
                      seed: int = 7, faults=None) -> dict:
    reset_packet_ids()
    cfg = NetworkConfig(radix=radix, levels=2, num_vcs=2, packet_size=2,
                        seed=seed)
    sim = ClosNetworkSimulation(cfg, workload=factory(), faults=faults,
                                scheduler=scheduler)
    return _snap(sim.run_workload(max_cycles=100_000))


class TestBuilderValidation:
    def test_rejects_tiny_rank_count(self):
        with pytest.raises(ValueError, match="num_ranks"):
            WorkloadBuilder(1)

    def test_rejects_out_of_range_endpoints(self):
        b = WorkloadBuilder(4)
        with pytest.raises(ValueError, match="src"):
            b.add(src=4, dest=0)
        with pytest.raises(ValueError, match="dest"):
            b.add(src=0, dest=-1)

    def test_rejects_self_send(self):
        with pytest.raises(ValueError, match="src == dest"):
            WorkloadBuilder(4).add(src=2, dest=2)

    def test_rejects_forward_dependency(self):
        b = WorkloadBuilder(4)
        b.add(src=0, dest=1)
        with pytest.raises(ValueError, match="earlier node"):
            b.add(src=1, dest=2, deps=(5,))

    def test_rejects_absolute_release_with_deps(self):
        b = WorkloadBuilder(4)
        first = b.add(src=0, dest=1)
        with pytest.raises(ValueError, match="requires no deps"):
            b.add(src=1, dest=2, deps=(first,), at=9)

    def test_rejects_bad_scalars(self):
        b = WorkloadBuilder(4)
        with pytest.raises(ValueError, match="size"):
            b.add(src=0, dest=1, size=0)
        with pytest.raises(ValueError, match="delay"):
            b.add(src=0, dest=1, delay=-1)
        with pytest.raises(ValueError, match="at"):
            b.add(src=0, dest=1, at=-3)

    def test_rejects_empty_build(self):
        with pytest.raises(ValueError, match="no messages"):
            WorkloadBuilder(4).build()


class TestDagSemantics:
    def _triangle(self):
        b = WorkloadBuilder(3)
        a = b.add(src=0, dest=1, size=2)
        c = b.add(src=1, dest=2, deps=(a,), delay=4)
        d = b.add(src=2, dest=0, at=9)
        return b.build(), (a, c, d)

    def test_probes_report_release_cycles(self):
        wl, _ = self._triangle()
        assert wl.eligible(0, 0) == 0
        assert wl.eligible(1, 0) is None  # gated on node a's delivery
        assert wl.eligible(2, 0) == 9  # pinned absolute release
        assert wl.eligible(2, 12) == 12  # never in the past
        assert wl.next_ready(0) == 0
        assert wl.ready_ranks(0) == [0]
        assert wl.ready_ranks(9) == [0, 2]
        assert not wl.done() and wl.remaining == 3 and wl.messages == 3

    def test_probes_are_pure(self):
        wl, _ = self._triangle()
        before = (wl.eligible(0, 0), wl.next_ready(0), wl.ready_ranks(9))
        for _ in range(5):
            wl.eligible(0, 0), wl.next_ready(0), wl.ready_ranks(9)
        assert (wl.eligible(0, 0), wl.next_ready(0),
                wl.ready_ranks(9)) == before

    def test_delivery_releases_successors_after_delay(self):
        wl, (a, c, d) = self._triangle()
        msg = wl.next_message(0, 3)
        assert (msg.node, msg.src, msg.dest, msg.size) == (a, 0, 1, 2)
        assert wl.next_message(0, 3) is None  # heap drained
        wl.sent(a, 42, 3)
        assert wl.deliver(999, 4) is False  # foreign packet id
        assert wl.deliver(42, 7) is True
        assert wl.eligible(1, 7) == 11  # delay=4 after delivery
        assert wl.next_message(1, 10) is None  # still thinking
        follow = wl.next_message(1, 11)
        assert follow.node == c
        assert wl.remaining == 2 and not wl.done()

    def test_latency_and_makespan_accounting(self):
        wl, (a, c, d) = self._triangle()
        wl.next_message(0, 0)
        wl.sent(a, 1, 0)
        wl.deliver(1, 6)
        wl.next_message(1, 10)
        wl.sent(c, 2, 10)
        wl.deliver(2, 13)
        wl.next_message(2, 9)
        wl.sent(d, 3, 9)
        wl.deliver(3, 20)
        assert wl.done() and wl.remaining == 0
        assert sorted(wl.message_latencies()) == [3, 6, 11]
        assert wl.makespan() == 20
        stats = wl.stats()
        assert stats["workload.messages"] == 3
        assert stats["workload.flits"] == 4
        assert stats["workload.delivered"] == 3
        assert stats["workload.makespan"] == 20
        assert stats["workload.msg_max"] == 11


class TestRequestReply:
    def test_closed_loop_gating(self):
        # window=1: the next request of a chain is eligible only
        # think cycles after the previous reply delivered.
        wl = request_reply(4, requests=2, window=1, think=7)
        req = wl.next_message(0, 0)
        assert (req.src, req.dest, req.flow) == (0, 2, "rr.0.0.0")
        wl.sent(req.node, 1000, 0)
        assert wl.eligible(0, 0) is None  # window exhausted
        own = wl.next_message(2, 0)  # rank 2's own first request
        wl.sent(own.node, 1001, 0)
        assert wl.eligible(2, 0) is None
        wl.deliver(1000, 5)  # request reaches the server
        assert wl.eligible(2, 5) == 5
        rep = wl.next_message(2, 5)
        assert (rep.src, rep.dest, rep.flow) == (2, 0, "rr.0.0.0")
        wl.sent(rep.node, 1002, 5)
        wl.deliver(1002, 9)  # reply back at the client
        assert wl.eligible(0, 9) == 16  # 9 + think

    def test_transaction_counts(self):
        wl = request_reply(6, requests=3, window=2)
        assert wl.messages == 6 * 2 * 3 * 2  # ranks*window*requests*2
        # Every rank is one client and exactly one server.
        assert wl.sends_per_rank() == [2 * 3 * 2] * 6

    def test_rejects_self_partner(self):
        with pytest.raises(ValueError, match="cannot serve"):
            request_reply(4, partner=lambda rank: rank)


class TestCollectiveShapes:
    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(min_value=2, max_value=16))
    def test_ring_allreduce_counts(self, n):
        wl = all_reduce(n, algorithm="ring")
        assert wl.sends_per_rank() == [2 * (n - 1)] * n
        assert wl.receives_per_rank() == [2 * (n - 1)] * n
        assert all(dep < node for dep, node in wl.edges())

    @settings(max_examples=6, deadline=None)
    @given(n=st.sampled_from([2, 4, 8, 16]))
    def test_recursive_doubling_counts(self, n):
        wl = all_reduce(n, algorithm="recursive-doubling")
        rounds = n.bit_length() - 1
        assert wl.sends_per_rank() == [rounds] * n
        assert wl.receives_per_rank() == [rounds] * n
        assert all(dep < node for dep, node in wl.edges())

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(min_value=2, max_value=12))
    def test_alltoall_counts(self, n):
        wl = all_to_all(n)
        assert wl.sends_per_rank() == [n - 1] * n
        assert wl.receives_per_rank() == [n - 1] * n
        assert all(dep < node for dep, node in wl.edges())

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(min_value=2, max_value=12),
           root=st.integers(min_value=0, max_value=11))
    def test_broadcast_counts(self, n, root):
        root %= n
        wl = broadcast(n, root=root)
        assert wl.messages == n - 1
        assert wl.receives_per_rank()[root] == 0
        assert sum(wl.receives_per_rank()) == n - 1
        assert all(dep < node for dep, node in wl.edges())

    @settings(max_examples=6, deadline=None)
    @given(n=st.sampled_from([2, 4, 8]),
           layers=st.integers(min_value=1, max_value=3),
           steps=st.integers(min_value=1, max_value=2))
    def test_decode_is_acyclic_and_phased(self, n, layers, steps):
        wl = transformer_decode(n, layers=layers, steps=steps)
        assert all(dep < node for dep, node in wl.edges())
        # Two all-reduces (attention + MLP) per layer per step.
        assert wl.sends_per_rank() == [
            steps * layers * 2 * 2 * (n - 1)
        ] * n

    def test_recursive_doubling_needs_power_of_two(self):
        with pytest.raises(ValueError, match="power-of-two"):
            all_reduce(6, algorithm="recursive-doubling")

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown all-reduce"):
            all_reduce(8, algorithm="butterflyx")


class TestReplayParsing:
    def test_csv_header_comments_blanks(self):
        rows = parse_csv_rows(REPLAY_CSV + ["", "   "])
        assert len(rows) == 6
        assert rows[0] == (0, 0, 5, 2, "w.a")
        assert rows[4] == (9, 6, 1, 1, "")

    def test_csv_rejects_bad_width(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_csv_rows(["cycle,src,dest,size", "1,2,3"])

    def test_csv_rejects_non_integer(self):
        with pytest.raises(ValueError, match="non-integer"):
            parse_csv_rows(["0,0,x,1"])

    def test_workload_pins_release_cycles(self):
        wl = from_csv(REPLAY_CSV)
        assert wl.messages == 6
        assert wl.num_ranks == 7  # max endpoint id + 1
        assert wl.eligible(0, 0) == 0
        assert wl.eligible(5, 0) == 12
        assert list(wl.edges()) == []  # replay nodes are independent

    def test_rank_bound_checked(self):
        with pytest.raises(ValueError, match="rank 6"):
            from_csv(REPLAY_CSV, num_ranks=4)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="no messages"):
            from_csv(["cycle,src,dest,size", "# nothing"])

    def test_chrome_rows_group_by_packet(self):
        doc = {"traceEvents": [
            {"ph": "X", "ts": 4, "dur": 2,
             "args": {"packet": 1, "flit": 0, "src": 2, "dest": 5,
                      "flow": "f.x"}},
            {"ph": "X", "ts": 2, "dur": 2,
             "args": {"packet": 1, "flit": 1, "src": 2, "dest": 5,
                      "flow": "f.x"}},
            {"ph": "X", "ts": 9, "dur": 1,
             "args": {"packet": 3, "flit": 0, "src": 0, "dest": 1}},
            {"ph": "M", "ts": 0, "args": {}},
            {"ph": "X", "ts": 1, "args": {"noise": True}},
        ]}
        import json

        rows = parse_chrome_rows([json.dumps(doc)])
        assert rows == [(2, 2, 5, 2, "f.x"), (9, 0, 1, 1, "")]

    def test_replay_allows_self_sends(self):
        # A switch trace legitimately records a packet entering and
        # leaving the same port number; replay must accept it.
        wl = from_csv(["0,3,3,1", "2,0,1,1"], num_ranks=4)
        assert wl.messages == 2 and wl.has_self_sends
        reset_packet_ids()
        sim = SwitchSimulation(BaselineRouter(_config()), workload=wl)
        result = sim.run_workload(max_cycles=10_000)
        assert result.extra["undelivered"] == 0.0

    def test_network_rejects_self_sends(self):
        wl = from_csv(["0,3,3,1"], num_ranks=4)
        cfg = NetworkConfig(radix=4, levels=2, num_vcs=2)
        with pytest.raises(ValueError, match="self-send"):
            ClosNetworkSimulation(cfg, workload=wl)

    def test_load_trace_sniffs_format(self):
        import json

        csv_wl = load_trace(REPLAY_CSV)
        assert csv_wl.messages == 6
        doc = {"traceEvents": [
            {"ph": "X", "ts": 0, "dur": 1,
             "args": {"packet": 0, "flit": 0, "src": 0, "dest": 1}},
        ]}
        chrome_wl = load_trace([json.dumps(doc)])
        assert chrome_wl.messages == 1


class TestCrossSchedulerEquivalence:
    """Every family: event mode == cycle mode, byte for byte."""

    FAMILIES = {
        "ring-allreduce": lambda: all_reduce(8, size=2),
        "rd-allreduce": lambda: all_reduce(
            8, size=2, algorithm="recursive-doubling"),
        "alltoall": lambda: all_to_all(8, size=2),
        "request-reply": lambda: request_reply(
            8, requests=3, window=2, think=5, service=2),
        "decode": lambda: transformer_decode(
            8, layers=2, steps=2, size=2, gap=4),
        "replay": lambda: from_csv(REPLAY_CSV),
    }

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_switch_results_identical(self, family):
        factory = self.FAMILIES[family]
        cycle = _switch_snapshot(factory, "cycle")
        event = _switch_snapshot(factory, "event")
        assert cycle == event
        assert cycle["saturated"] is False
        assert cycle["undelivered"] == 0.0
        assert cycle["stats.workload.makespan"] > 0

    @pytest.mark.parametrize("family", ["allreduce", "request-reply",
                                        "replay"])
    def test_network_results_identical(self, family):
        factory = {
            "allreduce": lambda: all_reduce(4, size=2),
            "request-reply": lambda: request_reply(
                4, requests=3, window=1, think=3),
            "replay": lambda: from_csv(REPLAY_CSV_SMALL),
        }[family]
        cycle = _network_snapshot(factory, "cycle")
        event = _network_snapshot(factory, "event")
        assert cycle == event
        assert cycle["undelivered"] == 0.0

    def test_event_mode_actually_fast_forwards(self):
        # Sparse replay schedule: long idle gaps between releases.
        reset_packet_ids()
        rows = ["0,0,5,1", "400,3,6,1", "800,1,4,1"]
        sim = SwitchSimulation(
            BaselineRouter(_config()), workload=from_csv(rows, num_ranks=8),
            scheduler="event",
        )
        sim.run_workload(max_cycles=50_000)
        assert sim._sched.cycles_skipped > 0


class TestTraceAndReplayRoundTrip:
    def _traced_run(self, scheduler: str):
        from repro.trace import TraceCollector, chrome_trace_json

        reset_packet_ids()
        collector = TraceCollector()
        sim = SwitchSimulation(
            BaselineRouter(_config()), workload=all_reduce(8, size=2),
            tracer=collector, scheduler=scheduler,
        )
        result = sim.run_workload(max_cycles=50_000)
        return result, chrome_trace_json(collector)

    def test_chrome_bytes_identical_across_schedulers(self):
        assert self._traced_run("cycle")[1] == self._traced_run("event")[1]

    def test_spans_carry_flow_annotations(self):
        import json

        _, text = self._traced_run("cycle")
        spans = [e for e in json.loads(text)["traceEvents"]
                 if e.get("ph") == "X"]
        assert spans
        assert all("src" in s["args"] and "dest" in s["args"]
                   for s in spans)
        assert any(s["args"].get("phase") == "allreduce" for s in spans)
        assert any("flow" in s["args"] for s in spans)

    def test_chrome_export_replays_to_completion(self):
        result, text = self._traced_run("cycle")
        replayed = from_chrome_trace([text])
        assert replayed.messages == 2 * 7 * 8  # ring all-reduce on 8
        assert replayed.flits_total == 2 * replayed.messages
        reset_packet_ids()
        sim = SwitchSimulation(
            BaselineRouter(_config()), workload=replayed,
            scheduler="event",
        )
        rerun = sim.run_workload(max_cycles=50_000)
        assert rerun.extra["undelivered"] == 0.0
        assert rerun.extra["stats.workload.delivered"] == float(
            replayed.messages
        )


class TestFaultComposition:
    """A scheduled dead link measurably stretches an all-reduce."""

    def _snapshot(self, scheduler: str, faults=None) -> dict:
        return _network_snapshot(
            lambda: all_reduce(16, size=2), scheduler, radix=8,
            faults=faults,
        )

    def _plan(self) -> FaultPlan:
        return FaultPlan(links=sample_link_faults(
            FoldedClos(8, 2), seed=5, count=1, cycle=5, until=400,
        ))

    def test_dead_link_stretches_completion(self):
        clean = self._snapshot("cycle")
        faulted = self._snapshot("cycle", faults=self._plan())
        assert clean["stats.workload.makespan"] == 534.0
        assert faulted["stats.workload.makespan"] == 931.0
        assert (faulted["stats.workload.makespan"]
                > clean["stats.workload.makespan"])
        assert faulted["undelivered"] == 0.0  # degraded, not broken

    def test_faulted_run_identical_across_schedulers(self):
        assert (self._snapshot("cycle", faults=self._plan())
                == self._snapshot("event", faults=self._plan()))


class TestSourceQueueObservability:
    def test_switch_workload_reports_peak_queue(self):
        snap = _switch_snapshot(lambda: all_to_all(8, size=2), "cycle")
        assert snap["stats.traffic.max_source_queue"] >= 1.0

    def test_network_workload_reports_peak_queue(self):
        snap = _network_snapshot(lambda: all_reduce(4, size=2), "cycle")
        assert "stats.traffic.max_source_queue" in snap

    def test_synthetic_run_reports_peak_queue(self):
        from repro.harness.experiment import SweepSettings

        reset_packet_ids()
        sim = SwitchSimulation(BaselineRouter(_config()), load=0.3,
                               packet_size=2)
        result = sim.run(SweepSettings(warmup=50, measure=100, drain=1000))
        assert result.extra["stats.traffic.max_source_queue"] >= 0.0
