"""Tests for the cost/power model (Fig 3b) and area model (Figs 15, 17d)."""

import pytest

from repro.core.config import RouterConfig
from repro.models.area import (
    AreaModel,
    area_sweep,
    baseline_storage_bits,
    fully_buffered_storage_bits,
    hierarchical_storage_bits,
    shared_buffer_storage_bits,
    storage_bits,
    storage_crossover_radix,
)
from repro.models.cost import (
    channel_count,
    cost_vs_radix,
    network_cost,
    network_power,
    power_vs_radix,
    router_count,
)
from repro.models.technology import TECH_2003, TECH_2010


class TestCostModel:
    def test_cost_decreases_monotonically_with_radix(self):
        """Figure 3(b): 'increasing the radix ... monotonically reduces
        the overall cost of a network'."""
        costs = [c for _, c in cost_vs_radix(TECH_2003, range(4, 200, 4))]
        assert costs == sorted(costs, reverse=True)

    def test_2010_costs_more_than_2003(self):
        """Footnote 4: 2010 shows higher cost because N is larger."""
        for k in (16, 64, 128):
            assert network_cost(k, TECH_2010) > network_cost(k, TECH_2003)

    def test_channel_count_formula(self):
        # N * 2 log_k N with N=1024, k=32: 1024 * 4 = 4096.
        assert channel_count(32, 1024) == pytest.approx(4096)

    def test_router_count(self):
        assert router_count(32, 1024) == pytest.approx(128)

    def test_power_decreases_with_radix(self):
        powers = [p for _, p in power_vs_radix(TECH_2003, range(4, 200, 4))]
        assert powers == sorted(powers, reverse=True)

    def test_power_proportional_to_router_count(self):
        assert network_power(16, TECH_2003, router_power=2.0) == pytest.approx(
            2.0 * router_count(16, TECH_2003.num_nodes)
        )

    def test_cost_unit_validation(self):
        with pytest.raises(ValueError):
            network_cost(16, TECH_2003, unit_cost=0)


class TestStorageBits:
    CFG = RouterConfig(radix=64, num_vcs=4, subswitch_size=8)

    def test_fully_buffered_quadratic(self):
        b64 = fully_buffered_storage_bits(self.CFG)
        b128 = fully_buffered_storage_bits(self.CFG.with_(radix=128))
        # Crosspoint term dominates: ~4x for 2x radix.
        assert 3.5 < b128 / b64 < 4.1

    def test_hierarchical_reduces_by_subswitch_factor(self):
        """Section 6: buffer area grows as O(v k^2 / p)."""
        full = fully_buffered_storage_bits(self.CFG)
        hier8 = hierarchical_storage_bits(self.CFG)
        hier4 = hierarchical_storage_bits(self.CFG.with_(subswitch_size=4))
        assert hier8 < hier4 < full

    def test_shared_buffer_saves_factor_v(self):
        """Section 5.4: storage reduced by a factor of v at crosspoints."""
        cfg = self.CFG.with_(input_buffer_depth=1)
        full = fully_buffered_storage_bits(cfg)
        shared = shared_buffer_storage_bits(cfg)
        input_bits = baseline_storage_bits(cfg)
        assert (shared - input_bits) * cfg.num_vcs == full - input_bits

    def test_baseline_smallest(self):
        assert baseline_storage_bits(self.CFG) < hierarchical_storage_bits(
            self.CFG
        )

    def test_dispatch(self):
        for arch in ("baseline", "distributed", "buffered",
                     "shared_buffer", "hierarchical", "voq"):
            assert storage_bits(arch, self.CFG) > 0
        with pytest.raises(ValueError):
            storage_bits("omega-network", self.CFG)


class TestAreaModel:
    CFG = RouterConfig(radix=64, num_vcs=4, subswitch_size=8)

    def test_crossover_near_radix_50(self):
        """Figure 15: 'for a radix greater than 50, storage area
        exceeds wire area'."""
        crossover = storage_crossover_radix("buffered", self.CFG)
        assert 40 <= crossover <= 60

    def test_hierarchical_saves_about_40_percent(self):
        """Section 6 / Figure 17(d): k=64, p=8 hierarchical takes ~40%
        less area than the fully buffered crossbar."""
        model = AreaModel()
        full = model.total_area("buffered", self.CFG)
        hier = model.total_area("hierarchical", self.CFG)
        saving = 1.0 - hier / full
        assert 0.30 < saving < 0.50

    def test_wire_area_grows_slowly(self):
        model = AreaModel()
        assert model.wire_area(128) < 2 * model.wire_area(32)

    def test_area_sweep_shape(self):
        rows = area_sweep("buffered", [16, 64, 128], self.CFG.with_(radix=16))
        assert len(rows) == 3
        ks = [k for k, _, _ in rows]
        storages = [s for _, s, _ in rows]
        assert ks == [16, 64, 128]
        assert storages == sorted(storages)

    def test_validation(self):
        model = AreaModel()
        with pytest.raises(ValueError):
            model.storage_area(-1)
        with pytest.raises(ValueError):
            model.wire_area(1)


class TestScalingData:
    def test_fit_growth_close_to_order_of_magnitude(self):
        """Figure 1: ~10x per five years.  The all-points fit lands
        within a factor-of-two band of that observation."""
        from repro.models.scaling import frontier, growth_per_five_years

        assert 5.0 < growth_per_five_years() < 15.0
        assert 7.0 < growth_per_five_years(frontier()) < 13.0

    def test_prediction_monotone(self):
        from repro.models.scaling import predicted_bandwidth_gbps

        assert predicted_bandwidth_gbps(2010) > predicted_bandwidth_gbps(2000)

    def test_paper_anchor_points_present(self):
        from repro.models.scaling import ROUTER_SCALING_DATA

        by_name = {d.name: d for d in ROUTER_SCALING_DATA}
        assert by_name["J-Machine"].bandwidth_gbps == 3.84
        assert by_name["Cray T3E"].bandwidth_gbps == 64.0
        assert by_name["SGI Altix 3000"].bandwidth_gbps == 400.0
        assert by_name["2010 estimate"].bandwidth_gbps == 20000.0

    def test_doubling_time_positive(self):
        from repro.models.scaling import doubling_years

        assert 1.0 < doubling_years() < 3.0

    def test_fit_requires_two_points(self):
        from repro.models.scaling import ROUTER_SCALING_DATA, fit_exponential

        with pytest.raises(ValueError):
            fit_exponential(ROUTER_SCALING_DATA[:1])
