"""Tests for the runtime simulation sanitizer.

Two halves: clean sanitized runs of every switch organization must
complete with zero violations, and injected faults (credit leaks,
buffer overflows, double VC grants, conservation breaks) must each be
detected with a located :class:`InvariantViolation`.
"""

import pytest

from repro.analysis.sanitizer import NetworkSanitizer, SimSanitizer
from repro.core.config import RouterConfig
from repro.core.errors import InvariantViolation
from repro.core.flit import make_packet
from repro.harness.experiment import SweepSettings, SwitchSimulation
from repro.network.netsim import NetworkConfig, NetworkSimulation
from repro.routers import (
    BaselineRouter,
    BufferedCrossbarRouter,
    DistributedRouter,
    HierarchicalCrossbarRouter,
    SharedBufferCrossbarRouter,
    VoqRouter,
)

ALL_ROUTERS = [
    BaselineRouter,
    DistributedRouter,
    BufferedCrossbarRouter,
    SharedBufferCrossbarRouter,
    HierarchicalCrossbarRouter,
    VoqRouter,
]

SHORT = SweepSettings(warmup=60, measure=120, drain=4000)


def _config(radix=16):
    return RouterConfig(radix=radix)


def _small_router(cls=BaselineRouter, radix=8):
    return cls(RouterConfig(radix=radix, input_buffer_depth=4))


def _single_flit(dest=1, src=0, vc=0, packet_id_offset=0):
    (flit,) = make_packet(dest=dest, size=1, src=src)
    flit.vc = vc
    return flit


# ----------------------------------------------------------------------
# Clean sanitized runs
# ----------------------------------------------------------------------


@pytest.mark.parametrize("router_cls", ALL_ROUTERS)
def test_sanitized_radix16_run_completes_clean(router_cls):
    """Every organization sustains per-cycle structural checks at k=16."""
    router = SimSanitizer(router_cls(_config(16)), check_interval=2)
    sim = SwitchSimulation(router, load=0.6, seed=7, sanitize=True)
    # sanitize=True must not re-wrap an existing sanitizer.
    assert sim.router is router
    sim.run(SHORT)
    sim.stop_sources()
    budget = 20000
    while budget > 0 and (
        any(s.backlog() for s in sim.sources) or not sim.router.idle()
    ):
        sim.step()
        budget -= 1
    sim.router.assert_drained()
    assert router.checks_run > 0
    assert router.violations_checked > 0


def test_switch_simulation_sanitize_flag_wraps_router():
    sim = SwitchSimulation(BaselineRouter(_config(8)), load=0.3,
                           sanitize=True)
    assert isinstance(sim.router, SimSanitizer)


def test_check_interval_throttles_structural_checks():
    router = SimSanitizer(_small_router(), check_interval=5)
    for _ in range(10):
        router.step()
    assert router.checks_run == 2


def test_check_interval_validated():
    with pytest.raises(ValueError):
        SimSanitizer(_small_router(), check_interval=0)
    with pytest.raises(ValueError):
        NetworkSanitizer(
            NetworkSimulation(NetworkConfig(radix=4, levels=2), load=0.1),
            check_interval=0,
        )


# ----------------------------------------------------------------------
# Fault injection: every invariant must actually trip
# ----------------------------------------------------------------------


def test_detects_flit_conservation_break():
    san = SimSanitizer(_small_router())
    san.accept(0, _single_flit())
    # Vanish the flit behind the sanitizer's back.
    san.inner.inputs[0][0].pop()
    with pytest.raises(InvariantViolation) as exc:
        san.check_now()
    assert exc.value.check == "flit-conservation"


def test_detects_buffer_overflow():
    san = SimSanitizer(_small_router())
    inner = san.inner
    depth = inner.config.input_buffer_depth
    for _ in range(depth):
        san.accept(0, _single_flit())
    # Bypass the push() guard: stuff one flit past the depth limit
    # (keeping the accounting consistent so only the bound trips).
    extra = _single_flit()
    inner.inputs[0][0]._q.append(extra)
    inner.stats.flits_accepted += 1
    with pytest.raises(InvariantViolation) as exc:
        san.check_now()
    assert exc.value.check == "buffer-bounds"
    assert exc.value.port == 0
    assert exc.value.vc == 0


def test_detects_stale_vc_ownership():
    san = SimSanitizer(_small_router())
    # Grant an output VC to a packet the router has never seen.
    san.inner.output_vcs[2].allocate(1, 999_999)
    with pytest.raises(InvariantViolation) as exc:
        san.check_now()
    assert exc.value.check == "vc-ownership"
    assert exc.value.port == 2
    assert exc.value.vc == 1


def test_detects_double_vc_grant():
    san = SimSanitizer(_small_router())
    flit = _single_flit()
    san.accept(0, flit)
    # One live packet granted two output VCs at once.
    san.inner.output_vcs[0].allocate(0, flit.packet_id)
    san.inner.output_vcs[1].allocate(0, flit.packet_id)
    with pytest.raises(InvariantViolation) as exc:
        san.check_now()
    assert exc.value.check == "vc-ownership"
    assert "two output VCs" in str(exc.value)


def test_detects_credit_leak_buffered():
    router = BufferedCrossbarRouter(RouterConfig(radix=8))
    san = SimSanitizer(router)
    router._credits[0][3][1].consume()  # leak one crosspoint credit
    with pytest.raises(InvariantViolation) as exc:
        san.check_now()
    err = exc.value
    assert err.check == "credit-conservation"
    assert "leak" in str(err)
    assert err.port == 0
    assert err.vc == 1
    assert err.context["output"] == 3


def test_detects_credit_surplus_hierarchical():
    router = HierarchicalCrossbarRouter(
        RouterConfig(radix=8, subswitch_size=4, local_group_size=4)
    )
    san = SimSanitizer(router)
    # Conjure a credit from nothing (restore() itself guards overflow,
    # so the fault is injected straight into the counter state).
    router._in_credits[5][0][0]._free += 1
    with pytest.raises(InvariantViolation) as exc:
        san.check_now()
    assert exc.value.check == "credit-conservation"
    assert "surplus" in str(exc.value)


def test_detects_credit_leak_shared_buffer():
    router = SharedBufferCrossbarRouter(RouterConfig(radix=8))
    san = SimSanitizer(router)
    router._credits[2][2].consume()
    with pytest.raises(InvariantViolation) as exc:
        san.check_now()
    assert exc.value.check == "credit-conservation"


def test_violation_carries_cycle_context():
    router = BufferedCrossbarRouter(RouterConfig(radix=8))
    san = SimSanitizer(router)
    for _ in range(17):
        san.step()
    router._credits[0][0][0].consume()
    with pytest.raises(InvariantViolation) as exc:
        san.step()
    err = exc.value
    assert err.cycle == 18
    assert f"cycle {err.cycle}" in str(err)
    assert "[credit-conservation]" in str(err)


def test_violation_is_assertion_error():
    # Backward compatibility: pytest.raises(AssertionError) in the
    # existing suites keeps catching sanitizer failures.
    assert issubclass(InvariantViolation, AssertionError)


# ----------------------------------------------------------------------
# Network-level sanitizer
# ----------------------------------------------------------------------


def test_sanitized_network_run_completes_clean():
    sim = NetworkSimulation(
        NetworkConfig(radix=4, levels=2, seed=3), load=0.4, sanitize=True
    )
    assert sim._sanitizer is not None
    sim.run(warmup=100, measure=100, drain=5000)
    assert sim._sanitizer.checks_run > 0


def test_network_sanitizer_detects_link_credit_leak():
    sim = NetworkSimulation(
        NetworkConfig(radix=4, levels=2, seed=3), load=0.4, sanitize=True
    )
    for _ in range(50):
        sim.step()
    _name, _port, link, _target, _tport = sim._sanitizer._links[0]
    link.credits[0].consume()
    with pytest.raises(InvariantViolation) as exc:
        sim.step()
    assert exc.value.check == "credit-conservation"


def test_network_sanitizer_detects_buffer_overflow():
    sim = NetworkSimulation(
        NetworkConfig(radix=4, levels=2, seed=3), load=0.2, sanitize=True
    )
    router = next(iter(sim.routers.values()))
    queue = router.inputs[0][0]
    for _ in range((queue.maxlen or 0) + 1):
        queue._q.append(_single_flit())
    with pytest.raises(InvariantViolation) as exc:
        sim._sanitizer.check_now(sim.cycle)
    assert exc.value.check == "buffer-bounds"
