"""Integration tests: the paper's headline claims at reduced scale.

These are fast (radix-16) versions of the benchmark experiments, kept
in the test suite so a plain ``pytest tests/`` run already validates
that the reproduction tells the paper's story end to end.  The
full-scale regenerations live in ``benchmarks/``.
"""

import pytest

from repro.core.config import RouterConfig
from repro.harness.experiment import (
    SweepSettings,
    SwitchSimulation,
    saturation_throughput,
)
from repro.models.area import AreaModel
from repro.models.latency import optimal_radix
from repro.models.technology import TECH_2003, TECH_2010
from repro.network.netsim import ClosNetworkSimulation, NetworkConfig
from repro.routers.baseline import BaselineRouter
from repro.routers.buffered import BufferedCrossbarRouter
from repro.routers.distributed import DistributedRouter
from repro.routers.hierarchical import HierarchicalCrossbarRouter
from repro.traffic.patterns import WorstCaseHierarchical

CFG = RouterConfig(radix=16, num_vcs=4, subswitch_size=4,
                   local_group_size=4)
SAT = SweepSettings(warmup=600, measure=1000, drain=100)


@pytest.fixture(scope="module")
def saturations():
    """Saturation throughput of the four main organizations (shared
    across the tests in this module)."""
    return {
        "baseline": saturation_throughput(BaselineRouter, CFG, settings=SAT),
        "distributed": saturation_throughput(
            DistributedRouter, CFG, settings=SAT),
        "distributed-ova": saturation_throughput(
            DistributedRouter, CFG.with_(vc_allocator="ova"), settings=SAT),
        "buffered": saturation_throughput(
            BufferedCrossbarRouter, CFG, settings=SAT),
        "hierarchical": saturation_throughput(
            HierarchicalCrossbarRouter, CFG, settings=SAT),
    }


class TestHeadlineOrdering:
    """The paper's abstract in one test class."""

    def test_buffering_recovers_throughput(self, saturations):
        """Naive scaling loses throughput; crosspoint buffers recover it
        ("a 20-60% increase in throughput compared to a conventional
        crossbar")."""
        gain = saturations["buffered"] / saturations["distributed"]
        assert 1.2 < gain < 2.2

    def test_hierarchical_keeps_buffered_performance(self, saturations):
        assert saturations["hierarchical"] > saturations["buffered"] - 0.08

    def test_hierarchical_beats_distributed_by_20_to_60_percent(
        self, saturations
    ):
        gain = saturations["hierarchical"] / saturations["distributed"]
        assert 1.2 < gain < 2.2

    def test_ova_below_cva(self, saturations):
        assert saturations["distributed-ova"] < saturations["distributed"]

    def test_hierarchical_saves_40_percent_area(self):
        model = AreaModel()
        cfg = RouterConfig(radix=64, subswitch_size=8)
        saving = 1 - (
            model.total_area("hierarchical", cfg)
            / model.total_area("buffered", cfg)
        )
        assert 0.3 < saving < 0.5

    def test_optimal_radix_grows_with_technology(self):
        assert optimal_radix(TECH_2010) > optimal_radix(TECH_2003) > 16


class TestWorstCaseStory:
    def test_worst_case_ordering(self):
        """Figure 17(b) at radix 16: fully buffered > hierarchical >
        baseline on the adversarial pattern."""
        pattern = lambda c: WorstCaseHierarchical(16, 4)
        buffered = saturation_throughput(
            BufferedCrossbarRouter, CFG, settings=SAT,
            pattern_factory=pattern)
        hier = saturation_throughput(
            HierarchicalCrossbarRouter, CFG, settings=SAT,
            pattern_factory=pattern)
        base = saturation_throughput(
            DistributedRouter, CFG, settings=SAT, pattern_factory=pattern)
        assert buffered > hier > base


class TestLatencyStory:
    def test_zero_load_latency_ordering(self):
        """Single stage: the deeper high-radix pipeline costs latency
        (Figure 9's zero-load region)."""
        settings = SweepSettings(warmup=200, measure=600, drain=6000)
        lats = {}
        for name, cls in (
            ("baseline", BaselineRouter),
            ("distributed", DistributedRouter),
        ):
            sim = SwitchSimulation(cls(CFG), load=0.05)
            lats[name] = sim.run(settings).avg_latency
        assert lats["distributed"] > lats["baseline"]

    def test_network_reverses_the_ordering(self):
        """Figure 19: at the *network* level the high-radix router wins
        despite its deeper pipeline."""
        high = ClosNetworkSimulation(
            NetworkConfig(radix=16, levels=2), load=0.1
        ).run(warmup=300, measure=400, drain=3000)
        low = ClosNetworkSimulation(
            NetworkConfig(radix=8, levels=3), load=0.1
        ).run(warmup=300, measure=400, drain=3000)
        assert high.avg_latency < low.avg_latency
