"""Tests for the traffic patterns of Table 1."""

import random  # lint: disable=R001 (tests build local seeded streams)
from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.traffic.patterns import (
    BitComplement,
    Diagonal,
    Hotspot,
    Permutation,
    Transpose,
    UniformRandom,
    WorstCaseHierarchical,
)


class TestUniformRandom:
    def test_destinations_cover_all_outputs(self):
        pat = UniformRandom(8)
        rng = random.Random(0)
        seen = {pat.dest(0, rng) for _ in range(500)}
        assert seen == set(range(8))

    def test_roughly_uniform(self):
        pat = UniformRandom(4)
        rng = random.Random(1)
        counts = Counter(pat.dest(2, rng) for _ in range(4000))
        for c in counts.values():
            assert 800 < c < 1200

    @given(st.integers(2, 64), st.integers(0, 63), st.integers(0, 2**31))
    def test_dest_in_range(self, k, src, seed):
        pat = UniformRandom(k)
        d = pat.dest(src % k, random.Random(seed))
        assert 0 <= d < k


class TestDiagonal:
    def test_only_two_destinations(self):
        """Table 1: input i sends only to i and (i+1) mod k."""
        pat = Diagonal(16)
        rng = random.Random(0)
        for src in range(16):
            dests = {pat.dest(src, rng) for _ in range(100)}
            assert dests <= {src, (src + 1) % 16}

    def test_wraparound(self):
        pat = Diagonal(8, fraction_same=0.0)
        rng = random.Random(0)
        assert pat.dest(7, rng) == 0

    def test_fraction_extremes(self):
        rng = random.Random(0)
        all_same = Diagonal(8, fraction_same=1.0)
        assert all(all_same.dest(3, rng) == 3 for _ in range(50))
        all_next = Diagonal(8, fraction_same=0.0)
        assert all(all_next.dest(3, rng) == 4 for _ in range(50))

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            Diagonal(8, fraction_same=1.5)


class TestHotspot:
    def test_default_hotspots_are_first_h_outputs(self):
        pat = Hotspot(64, num_hotspots=8)
        assert pat.hotspots == list(range(8))

    def test_hot_fraction_statistics(self):
        """Table 1: 50% of traffic goes to the h hot outputs (plus the
        hot outputs' share of the uniform half)."""
        pat = Hotspot(64, num_hotspots=8, hot_fraction=0.5)
        rng = random.Random(2)
        n = 20000
        hot_hits = sum(1 for _ in range(n) if pat.dest(0, rng) < 8)
        expected = 0.5 + 0.5 * (8 / 64)
        assert abs(hot_hits / n - expected) < 0.02

    def test_explicit_hotspots(self):
        pat = Hotspot(16, hotspots=[3, 9], hot_fraction=1.0)
        rng = random.Random(0)
        assert {pat.dest(0, rng) for _ in range(100)} == {3, 9}

    def test_invalid_hotspot_index(self):
        with pytest.raises(ValueError):
            Hotspot(8, hotspots=[8])

    def test_empty_hotspots(self):
        with pytest.raises(ValueError):
            Hotspot(8, hotspots=[])

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            Hotspot(8, num_hotspots=0)


class TestWorstCaseHierarchical:
    def test_row_targets_own_column(self):
        """All of row r's traffic lands in column r's outputs."""
        pat = WorstCaseHierarchical(32, subswitch_size=8)
        rng = random.Random(0)
        for src in range(32):
            row = src // 8
            for _ in range(20):
                d = pat.dest(src, rng)
                assert d // 8 == row

    def test_concentrates_into_diagonal_subswitches(self):
        """Only k/p of the (k/p)^2 subswitches receive traffic."""
        k, p = 16, 4
        pat = WorstCaseHierarchical(k, p)
        rng = random.Random(1)
        used = set()
        for src in range(k):
            for _ in range(50):
                d = pat.dest(src, rng)
                used.add((src // p, d // p))
        assert used == {(r, r) for r in range(k // p)}

    def test_uniform_within_column(self):
        pat = WorstCaseHierarchical(16, 4)
        rng = random.Random(3)
        counts = Counter(pat.dest(0, rng) for _ in range(4000))
        assert set(counts) == {0, 1, 2, 3}
        for c in counts.values():
            assert 800 < c < 1200

    def test_p_must_divide_k(self):
        with pytest.raises(ValueError):
            WorstCaseHierarchical(10, 4)


class TestExtensions:
    def test_transpose(self):
        pat = Transpose(16)
        rng = random.Random(0)
        assert pat.dest(1, rng) == 4  # (0,1) -> (1,0)
        assert pat.dest(7, rng) == 13  # (1,3) -> (3,1)

    def test_transpose_requires_square(self):
        with pytest.raises(ValueError):
            Transpose(12)

    def test_transpose_is_involution(self):
        pat = Transpose(16)
        rng = random.Random(0)
        for src in range(16):
            assert pat.dest(pat.dest(src, rng), rng) == src

    def test_bit_complement(self):
        pat = BitComplement(8)
        rng = random.Random(0)
        assert pat.dest(0, rng) == 7
        assert pat.dest(5, rng) == 2

    def test_bit_complement_requires_power_of_two(self):
        with pytest.raises(ValueError):
            BitComplement(12)

    def test_permutation(self):
        pat = Permutation([2, 0, 1])
        rng = random.Random(0)
        assert [pat.dest(i, rng) for i in range(3)] == [2, 0, 1]

    def test_permutation_validation(self):
        with pytest.raises(ValueError):
            Permutation([0, 0, 1])

    def test_min_ports(self):
        with pytest.raises(ValueError):
            UniformRandom(1)
