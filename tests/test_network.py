"""Tests for the network router and the Clos network simulation."""

import pytest

from repro.core.flit import make_packet
from repro.network.netsim import ClosNetworkSimulation, NetworkConfig
from repro.network.router import (
    NetworkRouter,
    NetworkRouterConfig,
    OutputLink,
    pipeline_depth_for_radix,
)


class TestNetworkRouterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkRouterConfig(num_ports=1)
        with pytest.raises(ValueError):
            NetworkRouterConfig(num_ports=4, num_vcs=0)
        with pytest.raises(ValueError):
            NetworkRouterConfig(num_ports=4, buffer_depth=0)

    def test_pipeline_depth_scales_with_radix(self):
        assert pipeline_depth_for_radix(64) > pipeline_depth_for_radix(8)


class TestNetworkRouterForwarding:
    def _router_pair(self):
        cfg = NetworkRouterConfig(num_ports=4, num_vcs=2, buffer_depth=4,
                                  flit_cycles=2, pipeline_delay=1,
                                  channel_latency=1, credit_latency=1)
        a = NetworkRouter(cfg, "a")
        b = NetworkRouter(cfg, "b")
        arrivals = []

        def to_b(flit, arrival):
            arrivals.append((flit, arrival, "b"))

        sink_hits = []

        def to_sink(flit, arrival):
            sink_hits.append((flit, arrival))

        a.attach(0, OutputLink(2, to_b, downstream_depth=4))
        for p in range(1, 4):
            a.attach(p, OutputLink(2, to_sink, downstream_depth=None))
        for p in range(4):
            b.attach(p, OutputLink(2, to_sink, downstream_depth=None))
        return a, b, arrivals, sink_hits

    def test_flit_forwarded_along_route(self):
        a, b, arrivals, sink_hits = self._router_pair()
        (flit,) = make_packet(dest=99, size=1, src=0, route=[0, 2])
        flit.vc = 1
        a.accept(1, flit)
        for _ in range(20):
            a.step()
            b.step()
        assert len(arrivals) == 1
        assert arrivals[0][0] is flit
        assert flit.hops == 1

    def test_sink_delivery(self):
        a, b, arrivals, sink_hits = self._router_pair()
        (flit,) = make_packet(dest=99, size=1, src=0, route=[2])
        a.accept(0, flit)
        for _ in range(20):
            a.step()
        assert len(sink_hits) == 1

    def test_credit_exhaustion_blocks(self):
        """With all downstream credits consumed, no further flit wins."""
        cfg = NetworkRouterConfig(num_ports=4, num_vcs=1, buffer_depth=8,
                                  flit_cycles=2, pipeline_delay=1,
                                  channel_latency=1, credit_latency=1)
        a = NetworkRouter(cfg, "a")
        arrivals = []
        a.attach(0, OutputLink(1, lambda f, t: arrivals.append(f),
                               downstream_depth=2))
        for p in range(1, 4):
            a.attach(p, OutputLink(1, lambda f, t: None, None))
        for _ in range(6):
            (flit,) = make_packet(dest=99, size=1, src=0, route=[0, 2])
            a.accept(0, flit)
        for _ in range(40):
            a.step()  # the downstream never returns credits
        assert a._credit_out is not None
        assert len(arrivals) <= 2
        assert a.occupancy() == 4  # the rest wait for credits

    def test_route_exhaustion_raises(self):
        a, b, *_ = self._router_pair()
        (flit,) = make_packet(dest=99, size=1, src=0, route=[])
        a.accept(0, flit)
        with pytest.raises(RuntimeError):
            for _ in range(5):
                a.step()

    def test_double_attach_rejected(self):
        cfg = NetworkRouterConfig(num_ports=2)
        r = NetworkRouter(cfg)
        link = OutputLink(1, lambda f, t: None, None)
        r.attach(0, link)
        with pytest.raises(RuntimeError):
            r.attach(0, link)


class TestClosNetworkSimulation:
    CFG = NetworkConfig(radix=8, levels=2, num_vcs=2, buffer_depth=4)

    def test_packets_delivered(self):
        sim = ClosNetworkSimulation(self.CFG, load=0.3)
        r = sim.run(warmup=200, measure=300, drain=2000)
        assert r.packets_measured > 0
        assert not r.saturated

    def test_throughput_tracks_offered_load(self):
        sim = ClosNetworkSimulation(self.CFG, load=0.4)
        r = sim.run(warmup=300, measure=500, drain=2000)
        assert r.throughput == pytest.approx(0.4, abs=0.08)

    def test_latency_grows_with_load(self):
        lo = ClosNetworkSimulation(self.CFG, load=0.1).run(200, 300, 2000)
        hi = ClosNetworkSimulation(self.CFG, load=0.7).run(300, 500, 4000)
        assert hi.avg_latency > lo.avg_latency

    def test_high_radix_lower_zero_load_latency(self):
        """Figure 19: the high-radix network wins at zero load."""
        high = ClosNetworkSimulation(
            NetworkConfig(radix=16, levels=2), load=0.05
        ).run(200, 400, 2000)
        low = ClosNetworkSimulation(
            NetworkConfig(radix=8, levels=3), load=0.05
        ).run(200, 400, 2000)
        assert high.avg_latency < low.avg_latency

    def test_deterministic(self):
        a = ClosNetworkSimulation(self.CFG, load=0.3).run(200, 300, 2000)
        b = ClosNetworkSimulation(self.CFG, load=0.3).run(200, 300, 2000)
        assert a.avg_latency == b.avg_latency
        assert a.throughput == b.throughput

    def test_invalid_load(self):
        with pytest.raises(ValueError):
            ClosNetworkSimulation(self.CFG, load=1.5)

    def test_multi_flit_packets(self):
        cfg = NetworkConfig(radix=8, levels=2, packet_size=4)
        sim = ClosNetworkSimulation(cfg, load=0.3)
        r = sim.run(warmup=300, measure=400, drain=3000)
        assert r.packets_measured > 0
