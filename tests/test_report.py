"""Tests for the plain-text reporting helpers."""

import pytest

from repro.harness.experiment import SweepResult
from repro.harness.report import format_saturation, format_sweeps, format_table
from repro.harness.stats import RunResult


def _result(load, lat, thpt, saturated=False):
    return RunResult(
        offered_load=load, avg_latency=lat, p99_latency=lat * 2,
        max_latency=int(lat * 3), throughput=thpt, packets_measured=100,
        cycles=1000, saturated=saturated,
    )


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, "x"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456], [float("nan")], [12345.0]])
        assert "0.123" in text
        assert "-" in text
        assert "1.23e+04" in text or "12345" in text.replace(",", "")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestFormatSweeps:
    def test_combined_curves(self):
        a = SweepResult("alpha", [_result(0.1, 10, 0.1), _result(0.5, 20, 0.5)])
        b = SweepResult("beta", [_result(0.1, 12, 0.1)])
        text = format_sweeps([a, b], title="Figure X")
        assert "Figure X" in text
        assert "alpha" in text and "beta" in text
        # beta has no 0.5 point: rendered as '-'
        last = text.splitlines()[-1]
        assert "-" in last

    def test_saturated_marker(self):
        a = SweepResult("x", [_result(0.9, 500, 0.6, saturated=True)])
        text = format_sweeps([a])
        assert "500.0*" in text


class TestFormatSaturation:
    def test_reports_max_throughput(self):
        a = SweepResult("arch", [_result(0.5, 10, 0.5), _result(1.0, 99, 0.72)])
        text = format_saturation([a])
        assert "0.720" in text
        assert "arch" in text
