"""Tests for RouterConfig validation and derived properties."""

import pytest

from repro.core.config import FAST_CONFIG, PAPER_CONFIG, RouterConfig


class TestDefaults:
    def test_paper_config_matches_section_4_3(self):
        assert PAPER_CONFIG.radix == 64
        assert PAPER_CONFIG.num_vcs == 4
        assert PAPER_CONFIG.flit_cycles == 4
        assert PAPER_CONFIG.subswitch_size == 8
        assert PAPER_CONFIG.local_group_size == 8
        assert PAPER_CONFIG.crosspoint_buffer_depth == 4

    def test_fast_config_keeps_structure(self):
        assert FAST_CONFIG.radix == 32
        assert FAST_CONFIG.subswitch_size == 8
        assert FAST_CONFIG.radix % FAST_CONFIG.subswitch_size == 0

    def test_capacity(self):
        assert PAPER_CONFIG.capacity_flits_per_cycle == pytest.approx(0.25)

    def test_num_subswitches(self):
        assert PAPER_CONFIG.num_subswitches_per_side == 8

    def test_subswitch_depths_default_to_crosspoint_depth(self):
        cfg = RouterConfig()
        assert cfg.subswitch_in_depth == cfg.crosspoint_buffer_depth
        assert cfg.subswitch_out_depth == cfg.crosspoint_buffer_depth

    def test_subswitch_depths_override(self):
        cfg = RouterConfig(subswitch_input_depth=16, subswitch_output_depth=2)
        assert cfg.subswitch_in_depth == 16
        assert cfg.subswitch_out_depth == 2


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("radix", 1),
        ("radix", 0),
        ("num_vcs", 0),
        ("flit_cycles", 0),
        ("input_buffer_depth", 0),
        ("crosspoint_buffer_depth", 0),
        ("local_group_size", 0),
        ("sa_latency", -1),
        ("credit_latency", -1),
    ])
    def test_rejects_out_of_range(self, field, value):
        with pytest.raises(ValueError):
            RouterConfig(**{field: value})

    def test_subswitch_must_divide_radix(self):
        with pytest.raises(ValueError):
            RouterConfig(radix=64, subswitch_size=6)

    def test_vc_allocator_values(self):
        assert RouterConfig(vc_allocator="cva").vc_allocator == "cva"
        assert RouterConfig(vc_allocator="ova").vc_allocator == "ova"
        with pytest.raises(ValueError):
            RouterConfig(vc_allocator="ideal")


class TestWith:
    def test_with_returns_modified_copy(self):
        base = RouterConfig()
        changed = base.with_(radix=32, num_vcs=2)
        assert changed.radix == 32
        assert changed.num_vcs == 2
        assert base.radix == 64

    def test_with_validates(self):
        with pytest.raises(ValueError):
            RouterConfig().with_(radix=63)  # subswitch 8 does not divide

    def test_frozen(self):
        cfg = RouterConfig()
        with pytest.raises(Exception):
            cfg.radix = 16  # type: ignore[misc]  # lint: disable=R003
