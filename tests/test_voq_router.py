"""Tests for the VOQ switch and the iSLIP allocator (Section 8)."""

import pytest

from repro.allocation.islip import IslipAllocator
from repro.core.config import RouterConfig
from repro.core.flit import make_packet
from repro.harness.experiment import SwitchSimulation, SweepSettings
from repro.routers.voq import VoqRouter

CFG = RouterConfig(radix=8, num_vcs=2, subswitch_size=4, local_group_size=4)
FAST = SweepSettings(warmup=400, measure=800, drain=50)


def _drain(router, max_cycles=1500):
    out = []
    for _ in range(max_cycles):
        router.step()
        out.extend(router.drain_ejected())
        if router.idle():
            break
    return out


class TestIslipAllocator:
    def test_empty_requests(self):
        alloc = IslipAllocator(4, 4)
        assert alloc.allocate([set() for _ in range(4)]) == {}

    def test_single_request(self):
        alloc = IslipAllocator(4, 4)
        reqs = [set(), {2}, set(), set()]
        assert alloc.allocate(reqs) == {1: 2}

    def test_matching_is_one_to_one(self):
        alloc = IslipAllocator(4, 4, iterations=4)
        reqs = [{0, 1, 2, 3} for _ in range(4)]
        m = alloc.allocate(reqs)
        assert len(m) == 4
        assert len(set(m.values())) == 4

    def test_grants_respect_requests(self):
        alloc = IslipAllocator(4, 4, iterations=2)
        reqs = [{1}, {1, 2}, {3}, set()]
        m = alloc.allocate(reqs)
        for inp, out in m.items():
            assert out in reqs[inp]

    def test_more_iterations_never_smaller_matching(self):
        reqs = [{0, 1}, {0, 1}, {2, 3}, {2, 3}]
        small = IslipAllocator(4, 4, iterations=1).allocate(reqs)
        big = IslipAllocator(4, 4, iterations=4).allocate(reqs)
        assert len(big) >= len(small)

    def test_pointer_desynchronization(self):
        """After a contested grant, the pointers separate so the next
        cycle serves a different input (the iSLIP liveness property)."""
        alloc = IslipAllocator(2, 2, iterations=1)
        reqs = [{0}, {0}]
        first = alloc.allocate(reqs)
        second = alloc.allocate(reqs)
        assert list(first.keys()) != list(second.keys())

    def test_validation(self):
        with pytest.raises(ValueError):
            IslipAllocator(0, 4)
        with pytest.raises(ValueError):
            IslipAllocator(4, 4, iterations=0)
        with pytest.raises(ValueError):
            IslipAllocator(4, 4).allocate([set()])

    def test_fairness_under_full_load(self):
        alloc = IslipAllocator(4, 4, iterations=1)
        wins = [0] * 4
        for _ in range(100):
            m = alloc.allocate([{0} for _ in range(4)])
            (inp,) = m.keys()
            wins[inp] += 1
        assert max(wins) - min(wins) <= 2


class TestVoqRouter:
    def test_single_flit_delivery(self):
        router = VoqRouter(CFG)
        (flit,) = make_packet(dest=5, size=1, src=2)
        router.accept(2, flit)
        out = _drain(router)
        assert len(out) == 1

    def test_multi_flit_in_order(self):
        router = VoqRouter(CFG)
        for f in make_packet(dest=6, size=4, src=0):
            router.accept(0, f)
        out = _drain(router)
        assert [f.flit_index for f, _ in out] == [0, 1, 2, 3]

    def test_voq_occupancy_tracks_sorting(self):
        router = VoqRouter(CFG)
        (flit,) = make_packet(dest=3, size=1, src=0)
        router.accept(0, flit)
        router.step()
        router.step()
        assert router.voq_occupancy() <= 1
        _drain(router)
        assert router.voq_occupancy() == 0

    def test_no_hol_blocking(self):
        """Flits to different outputs never block each other at an
        input — the defining property of VOQ."""
        cfg = CFG.with_(num_vcs=1)
        router = VoqRouter(cfg)
        # Output 1 is contested by every input; input 0 also has
        # traffic for the idle output 5 behind it.
        for src in range(4):
            (f,) = make_packet(dest=1, size=1, src=src)
            router.accept(src, f)
        (g,) = make_packet(dest=5, size=1, src=0)
        router.accept(0, g)
        out = _drain(router)
        cycles_to_5 = [c for f, c in out if f.dest == 5]
        cycles_to_1 = sorted(c for f, c in out if f.dest == 1)
        # The packet to output 5 does not wait for all four contested
        # transmissions to finish.
        assert cycles_to_5[0] < cycles_to_1[-1]

    def test_high_saturation_throughput(self):
        """Section 8: VOQ reaches ~100% throughput [23]."""
        cfg = RouterConfig(radix=16, subswitch_size=4, local_group_size=4)
        r = SwitchSimulation(VoqRouter(cfg, iterations=2), load=1.0).run(FAST)
        assert r.throughput > 0.85

    def test_beats_distributed_baseline(self):
        from repro.routers.distributed import DistributedRouter

        cfg = RouterConfig(radix=16, subswitch_size=4, local_group_size=4)
        voq = SwitchSimulation(VoqRouter(cfg), load=1.0).run(FAST)
        base = SwitchSimulation(DistributedRouter(cfg), load=1.0).run(FAST)
        assert voq.throughput > base.throughput

    def test_multiple_packets_different_vcs_no_deadlock(self):
        cfg = CFG.with_(num_vcs=2)
        router = VoqRouter(cfg)
        for src in range(8):
            for vc in range(2):
                for f in make_packet(dest=(src + vc) % 8, size=3, src=src):
                    f.vc = vc
                    router.accept(src, f)
        out = _drain(router, max_cycles=4000)
        assert len(out) == 8 * 2 * 3
        assert router.idle()

    def test_voq_storage_model(self):
        from repro.models.area import (
            fully_buffered_storage_bits,
            voq_storage_bits,
        )

        cfg = RouterConfig(radix=64, subswitch_size=8, input_buffer_depth=1)
        # "VOQ adds O(k^2) buffering": same order as the fully buffered
        # crossbar's crosspoint storage.
        fb_xpoints = fully_buffered_storage_bits(cfg) - 64 * 4 * 1 * 64
        assert voq_storage_bits(cfg) == fb_xpoints
