"""Tests for the power breakdown and credit-loop buffer-sizing models."""

import pytest

from repro.core.config import RouterConfig
from repro.harness.experiment import SweepSettings, saturation_throughput
from repro.models.buffer_sizing import (
    credit_round_trip,
    crosspoint_required_depth,
    max_throughput_fraction,
    required_depth,
)
from repro.models.latency import (
    optimal_radix,
    packet_latency,
    packet_latency_with_flight,
    time_of_flight,
)
from repro.models.power import PowerModel
from repro.models.technology import TECH_2003
from repro.routers.buffered import BufferedCrossbarRouter


class TestPowerModel:
    MODEL = PowerModel()

    def test_power_nearly_radix_independent(self):
        """Section 2: 'the power of an individual router node is
        largely independent of the radix as long as the total router
        bandwidth is held constant'."""
        p16 = self.MODEL.router_power(16, 1e12)
        p256 = self.MODEL.router_power(256, 1e12)
        assert (p256 - p16) / p16 < 0.05

    def test_arbitration_negligible(self):
        """'The arbitration logic ... represents a negligible fraction
        of total power.'"""
        for k in (16, 64, 256):
            assert self.MODEL.arbitration_fraction(k, 1e12) < 0.05

    def test_arbitration_grows_with_radix(self):
        assert self.MODEL.arbitration_power(256) > self.MODEL.arbitration_power(16)

    def test_io_dominates(self):
        parts = self.MODEL.breakdown(64, 1e12)
        assert parts["io"] > parts["switch"] > parts["arbitration"]

    def test_power_scales_with_bandwidth(self):
        assert self.MODEL.router_power(64, 2e12) > 1.8 * self.MODEL.router_power(64, 1e12)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.MODEL.router_power(64, 0)
        with pytest.raises(ValueError):
            self.MODEL.arbitration_power(1)


class TestBufferSizing:
    def test_round_trip_arithmetic(self):
        # forward 4 + worst-case alignment 3 + credit 3.
        assert credit_round_trip(4, 3, 4) == 10
        # Best case: no alignment wait.
        assert credit_round_trip(4, 3, 4, service_wait=0) == 7

    def test_required_depth_littles_law(self):
        # Round trip 10 cycles, one flit per 4 cycles -> 3 credits.
        assert required_depth(4, 3, 4) == 3

    def test_paper_config_needs_four_flits(self):
        """Figure 14(a)'s result as arithmetic: with the paper's
        timing, four-flit crosspoint buffers cover the worst-case
        credit loop."""
        assert crosspoint_required_depth(RouterConfig()) <= 4

    def test_throughput_ceiling(self):
        # Depth 1 with a 10-cycle loop: at most 4/10 of capacity.
        ceiling = max_throughput_fraction(1, 4, 3, 4)
        assert ceiling == pytest.approx(4 / 10)
        assert max_throughput_fraction(8, 4, 3, 4) == 1.0

    def test_ceiling_matches_single_flow_simulation(self):
        """The ceiling applies per credit loop: a single (input, VC,
        output) stream through a one-flit crosspoint buffer is limited
        to roughly depth * flit_cycles / round_trip of capacity.

        (Under uniform traffic each loop carries only load/k, so the
        ceiling never binds — which is why Figure 14(a) shows even
        one-flit buffers doing well on uniform random traffic.)
        """
        from repro.core.flit import make_packet

        cfg = RouterConfig(radix=8, num_vcs=1, subswitch_size=4,
                           local_group_size=4, crosspoint_buffer_depth=1,
                           input_buffer_depth=64)
        router = BufferedCrossbarRouter(cfg)
        # Saturate a single flow 0 -> 1.
        cycles = 2000
        delivered = 0
        for t in range(cycles):
            if router.input_space(0, 0) > 0:
                (f,) = make_packet(dest=1, size=1, src=0)
                router.accept(0, f)
            router.step()
            delivered += len(router.drain_ejected())
        measured = delivered / (cycles / cfg.flit_cycles)
        best = max_throughput_fraction(
            1, cfg.flit_cycles, cfg.credit_latency, cfg.flit_cycles,
            service_wait=0,
        )
        worst = max_throughput_fraction(
            1, cfg.flit_cycles,
            cfg.credit_latency + cfg.flit_cycles - 1, cfg.flit_cycles,
        )
        assert worst - 0.1 <= measured <= best + 0.1
        assert measured < 0.75  # well below full capacity

    def test_validation(self):
        with pytest.raises(ValueError):
            credit_round_trip(-1, 0, 4)
        with pytest.raises(ValueError):
            credit_round_trip(0, 0, 0)
        with pytest.raises(ValueError):
            max_throughput_fraction(0, 1, 1, 4)


class TestTimeOfFlight:
    def test_value(self):
        assert time_of_flight(200.0) == pytest.approx(1e-6)

    def test_shifts_latency_uniformly(self):
        base = packet_latency(40, TECH_2003)
        shifted = packet_latency_with_flight(40, TECH_2003, 100.0)
        assert shifted - base == pytest.approx(time_of_flight(100.0))

    def test_optimum_unchanged(self):
        """Section 2: time of flight 'has minimal impact on the
        optimal radix' — with a radix-independent D, none at all."""
        k_star = optimal_radix(TECH_2003)
        ks = range(4, 200, 2)
        with_flight = min(
            ks, key=lambda k: packet_latency_with_flight(k, TECH_2003, 50.0)
        )
        assert abs(with_flight - k_star) <= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            time_of_flight(-1.0)
        with pytest.raises(ValueError):
            time_of_flight(1.0, velocity=0)
