"""Event-driven fast-forward: cycle/event byte-identity and safety.

The :class:`~repro.engine.EventScheduler` may only change *wall-clock*
behavior, never simulation behavior: every statistic, every trace
byte, and every fault-recovery action must be identical to the cycle
stepper's.  These tests pin that contract deterministically for every
switch organization and the Clos network — including under tracing and
fault plans — and property-test it across random seeds and loads.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import RouterConfig
from repro.core.flit import reset_packet_ids
from repro.engine import EventScheduler, Scheduler, make_scheduler
from repro.faults import FaultPlan
from repro.harness.experiment import SweepSettings, SwitchSimulation
from repro.network.netsim import ClosNetworkSimulation, NetworkConfig
from repro.routers.baseline import BaselineRouter
from repro.routers.buffered import BufferedCrossbarRouter
from repro.routers.distributed import DistributedRouter
from repro.routers.hierarchical import HierarchicalCrossbarRouter
from repro.routers.shared_buffer import SharedBufferCrossbarRouter
from repro.routers.voq import VoqRouter

ROUTERS = {
    "baseline": BaselineRouter,
    "distributed": DistributedRouter,
    "buffered": BufferedCrossbarRouter,
    "shared-buffer": SharedBufferCrossbarRouter,
    "hierarchical": HierarchicalCrossbarRouter,
    "voq": VoqRouter,
}

SETTINGS = SweepSettings(warmup=150, measure=250, drain=3000)


def _config(seed: int = 7) -> RouterConfig:
    return RouterConfig(radix=8, num_vcs=2, subswitch_size=4,
                        local_group_size=4, seed=seed)


def _normalize(snap: dict) -> dict:
    # A zero-packet measurement window reports NaN latencies; NaN
    # never compares equal to itself, so map it to None to keep the
    # snapshot equality meaningful for such runs.
    import math

    return {
        k: None if isinstance(v, float) and math.isnan(v) else v
        for k, v in snap.items()
    }


def _switch_snapshot(arch: str, scheduler: str, load: float = 0.2,
                     seed: int = 7, faults=None) -> dict:
    reset_packet_ids()
    sim = SwitchSimulation(
        ROUTERS[arch](_config(seed)), load=load, packet_size=2,
        faults=faults, scheduler=scheduler,
    )
    result = sim.run(SETTINGS)
    snap = {
        f: getattr(result, f)
        for f in ("offered_load", "avg_latency", "p99_latency",
                  "max_latency", "throughput", "packets_measured",
                  "cycles", "saturated")
    }
    snap.update({
        k: v for k, v in result.extra.items()
        if not k.startswith("stats.engine.")
    })
    return _normalize(snap)


def _network_snapshot(scheduler: str, load: float = 0.2,
                      seed: int = 7, faults=None) -> dict:
    reset_packet_ids()
    cfg = NetworkConfig(radix=4, levels=2, num_vcs=2, packet_size=2,
                        seed=seed)
    sim = ClosNetworkSimulation(cfg, load, faults=faults,
                                scheduler=scheduler)
    result = sim.run(warmup=150, measure=250, drain=3000)
    snap = {
        f: getattr(result, f)
        for f in ("offered_load", "avg_latency", "p99_latency",
                  "max_latency", "throughput", "packets_measured",
                  "cycles", "saturated")
    }
    snap.update({
        k: v for k, v in result.extra.items()
        if not k.startswith("stats.engine.")
    })
    return _normalize(snap)


class TestFactory:
    def test_make_scheduler_modes(self):
        assert type(make_scheduler("cycle")) is Scheduler
        assert type(make_scheduler("event")) is EventScheduler

    def test_make_scheduler_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("turbo")


class TestSwitchEquivalence:
    """Every organization: event mode == cycle mode, byte for byte."""

    @pytest.mark.parametrize("arch", sorted(ROUTERS))
    def test_results_identical(self, arch):
        assert (_switch_snapshot(arch, "cycle")
                == _switch_snapshot(arch, "event"))

    def test_low_load_actually_fast_forwards(self):
        reset_packet_ids()
        sim = SwitchSimulation(
            HierarchicalCrossbarRouter(_config()), load=0.02,
            scheduler="event",
        )
        sim.run(SETTINGS)
        assert sim._sched.cycles_skipped > 0
        assert sim._sched.ff_jumps > 0

    def test_cycle_mode_never_skips(self):
        reset_packet_ids()
        sim = SwitchSimulation(
            HierarchicalCrossbarRouter(_config()), load=0.02,
        )
        result = sim.run(SETTINGS)
        assert sim._sched.cycles_skipped == 0
        assert result.extra["stats.engine.cycles_skipped"] == 0.0

    def test_skip_counters_land_in_extras(self):
        reset_packet_ids()
        sim = SwitchSimulation(
            HierarchicalCrossbarRouter(_config()), load=0.02,
            scheduler="event",
        )
        result = sim.run(SETTINGS)
        assert result.extra["stats.engine.cycles_skipped"] == float(
            sim._sched.cycles_skipped
        )
        assert result.extra["stats.engine.ff_jumps"] == float(
            sim._sched.ff_jumps
        )

    def test_identical_under_fault_plan(self):
        plan = FaultPlan(corrupt_rate=0.02, credit_loss_rate=0.01)
        assert (_switch_snapshot("buffered", "cycle", faults=plan)
                == _switch_snapshot("buffered", "event", faults=plan))


class TestNetworkEquivalence:
    def test_results_identical(self):
        assert _network_snapshot("cycle") == _network_snapshot("event")

    def test_identical_under_fault_plan(self):
        plan = FaultPlan(corrupt_rate=0.02, credit_loss_rate=0.01)
        assert (_network_snapshot("cycle", load=0.1, faults=plan)
                == _network_snapshot("event", load=0.1, faults=plan))

    def test_low_load_actually_fast_forwards(self):
        reset_packet_ids()
        cfg = NetworkConfig(radix=4, levels=2, num_vcs=2)
        sim = ClosNetworkSimulation(cfg, 0.02, scheduler="event")
        sim.run(warmup=150, measure=250, drain=3000)
        assert sim._scheduler.cycles_skipped > 0

    def test_scalar_fallback_matches_bulk_draws(self, monkeypatch):
        # Arrival pre-drawing has two implementations: vectorized
        # numpy stream mirroring and a pure-Python bounded loop used
        # when numpy is absent.  Both must consume the host RNG
        # streams identically.
        import repro.network.netsim as netsim

        if netsim._np is None:
            pytest.skip("numpy unavailable; the fallback is the only path")
        bulk = _network_snapshot("event")
        monkeypatch.setattr(netsim, "_np", None)
        scalar = _network_snapshot("event")
        assert scalar == bulk


class TestTraceEquivalence:
    """Fast-forward must be invisible in the exported Chrome trace."""

    def _chrome_bytes(self, scheduler, load=0.1, seed=9):
        from repro.trace import TraceCollector, chrome_trace_json

        reset_packet_ids()
        collector = TraceCollector()
        sim = SwitchSimulation(
            HierarchicalCrossbarRouter(_config(seed)), load=load,
            tracer=collector, scheduler=scheduler,
        )
        sim.run(SETTINGS)
        return chrome_trace_json(collector)

    def test_trace_byte_identical(self):
        assert self._chrome_bytes("cycle") == self._chrome_bytes("event")

    def test_trace_byte_identical_at_low_load(self):
        # Low load maximizes skipped spans; the replayed cycle hooks
        # must keep the collector's cycle accounting identical.
        assert (self._chrome_bytes("cycle", load=0.02)
                == self._chrome_bytes("event", load=0.02))

    def test_scheduler_stats_opt_in_only(self):
        from repro.trace import TraceCollector
        from repro.trace.chrome import to_chrome_trace

        collector = TraceCollector()
        plain = to_chrome_trace(collector)
        assert "scheduler" not in plain["otherData"]
        tagged = to_chrome_trace(
            collector, scheduler_stats={"cycles_skipped": 5, "ff_jumps": 1}
        )
        assert tagged["otherData"]["scheduler"] == {
            "cycles_skipped": 5, "ff_jumps": 1,
        }


class TestPropertyEquivalence:
    """Randomized seeds/loads: the equivalence is not knife-edge."""

    @settings(max_examples=12, deadline=None)
    @given(
        arch=st.sampled_from(sorted(ROUTERS)),
        seed=st.integers(min_value=0, max_value=2**16),
        load=st.sampled_from([0.02, 0.1, 0.3, 0.6]),
    )
    def test_switch_stats_identical(self, arch, seed, load):
        assert (_switch_snapshot(arch, "cycle", load=load, seed=seed)
                == _switch_snapshot(arch, "event", load=load, seed=seed))

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        load=st.sampled_from([0.02, 0.15, 0.4]),
    )
    def test_network_stats_identical(self, seed, load):
        assert (_network_snapshot("cycle", load=load, seed=seed)
                == _network_snapshot("event", load=load, seed=seed))
