"""Boundary configurations across all router models.

The paper's design point is k=64, v=4, 4-cycle flits — but the models
must stay correct at the edges of the configuration space: single-cycle
flits (wide datapath), a single VC, tiny radix, deep/shallow buffers,
and scheme combinations the benchmarks never exercise together.
"""

import pytest

from repro.core.config import RouterConfig
from repro.harness.experiment import SwitchSimulation, SweepSettings
from repro.routers import (
    BaselineRouter,
    BufferedCrossbarRouter,
    DistributedRouter,
    HierarchicalCrossbarRouter,
    SharedBufferCrossbarRouter,
    VoqRouter,
)

ALL_ROUTERS = [
    BaselineRouter,
    DistributedRouter,
    BufferedCrossbarRouter,
    SharedBufferCrossbarRouter,
    HierarchicalCrossbarRouter,
    VoqRouter,
]

FAST = SweepSettings(warmup=200, measure=400, drain=4000)


def _run(router, load=0.4, packet_size=1):
    sim = SwitchSimulation(router, load=load, packet_size=packet_size)
    return sim.run(FAST)


@pytest.mark.parametrize("router_cls", ALL_ROUTERS)
class TestSingleCycleFlits:
    def test_flit_cycles_one(self, router_cls):
        """With a full-width datapath (1-cycle flits) everything still
        flows.

        The distributed router is the exception to "throughput tracks
        offered load" here: its input controllers keep one request in
        flight, so an input can accept at most one flit per allocation
        round trip (sa_latency + 1 cycles).  The paper's design point
        hides this entirely — its 4-cycle flit serialization covers the
        3-stage allocation latency — but at flit_cycles=1 the allocator
        becomes the input bottleneck (~1/4 flits/cycle).
        """
        cfg = RouterConfig(radix=8, num_vcs=2, flit_cycles=1,
                           subswitch_size=4, local_group_size=4)
        r = _run(router_cls(cfg))
        assert r.packets_measured > 0
        if router_cls is DistributedRouter:
            ceiling = 1.0 / (cfg.sa_latency + 1)
            assert r.throughput > ceiling * 0.9
        else:
            assert r.throughput == pytest.approx(0.4, abs=0.08)
            assert not r.saturated


@pytest.mark.parametrize("router_cls", ALL_ROUTERS)
class TestSingleVc:
    def test_one_vc_functional(self, router_cls):
        cfg = RouterConfig(radix=8, num_vcs=1, subswitch_size=4,
                           local_group_size=4)
        r = _run(router_cls(cfg), load=0.3, packet_size=2)
        assert r.packets_measured > 0
        assert not r.saturated


@pytest.mark.parametrize("router_cls", ALL_ROUTERS)
class TestTinyRadix:
    def test_radix_two(self, router_cls):
        cfg = RouterConfig(radix=2, num_vcs=2, subswitch_size=1,
                           local_group_size=2)
        r = _run(router_cls(cfg), load=0.3)
        assert r.packets_measured > 0

    def test_radix_four_subswitch_two(self, router_cls):
        cfg = RouterConfig(radix=4, num_vcs=2, subswitch_size=2,
                           local_group_size=2)
        r = _run(router_cls(cfg), load=0.4)
        assert r.packets_measured > 0


class TestSchemeCombinations:
    def test_ova_with_prioritization(self):
        """OVA and the two-arbiter allocator compose."""
        cfg = RouterConfig(radix=8, num_vcs=2, subswitch_size=4,
                           local_group_size=4, vc_allocator="ova",
                           prioritize_nonspeculative=True)
        r = _run(DistributedRouter(cfg), load=0.5, packet_size=4)
        assert r.packets_measured > 0

    def test_nonspeculative_ova(self):
        cfg = RouterConfig(radix=8, num_vcs=2, subswitch_size=4,
                           local_group_size=4, vc_allocator="ova",
                           speculative=False)
        r = _run(DistributedRouter(cfg), load=0.4, packet_size=3)
        assert r.packets_measured > 0

    def test_asymmetric_subswitch_depths(self):
        cfg = RouterConfig(radix=8, num_vcs=2, subswitch_size=4,
                           local_group_size=4,
                           subswitch_input_depth=2,
                           subswitch_output_depth=12)
        r = _run(HierarchicalCrossbarRouter(cfg), load=0.5, packet_size=4)
        assert r.packets_measured > 0

    def test_group_size_exceeding_radix(self):
        """m > k collapses to a single local group."""
        cfg = RouterConfig(radix=4, num_vcs=2, subswitch_size=2,
                           local_group_size=64)
        r = _run(DistributedRouter(cfg), load=0.4)
        assert r.packets_measured > 0

    def test_deep_sa_pipeline(self):
        """Very high radix needs more arbitration stages; sa_latency
        models the deeper pipeline and costs only latency."""
        base = RouterConfig(radix=8, num_vcs=2, subswitch_size=4,
                            local_group_size=4, sa_latency=1)
        deep = base.with_(sa_latency=8)
        quick = SweepSettings(warmup=200, measure=500, drain=4000)
        shallow_r = SwitchSimulation(
            DistributedRouter(base), load=0.2).run(quick)
        deep_r = SwitchSimulation(
            DistributedRouter(deep), load=0.2).run(quick)
        assert deep_r.avg_latency > shallow_r.avg_latency + 5

    def test_zero_sa_latency(self):
        cfg = RouterConfig(radix=8, num_vcs=2, subswitch_size=4,
                           local_group_size=4, sa_latency=0)
        r = _run(DistributedRouter(cfg), load=0.4)
        assert r.packets_measured > 0

    def test_shared_buffer_deep_crosspoints(self):
        cfg = RouterConfig(radix=8, num_vcs=2, subswitch_size=4,
                           local_group_size=4, crosspoint_buffer_depth=32)
        r = _run(SharedBufferCrossbarRouter(cfg), load=0.6, packet_size=4)
        assert r.packets_measured > 0

    def test_voq_many_iterations(self):
        cfg = RouterConfig(radix=8, num_vcs=2, subswitch_size=4,
                           local_group_size=4)
        r = _run(VoqRouter(cfg, iterations=8), load=0.6)
        assert r.packets_measured > 0

    def test_large_packets_small_buffers(self):
        """Packets longer than every buffer still wormhole through."""
        cfg = RouterConfig(radix=8, num_vcs=2, subswitch_size=4,
                           local_group_size=4, input_buffer_depth=2,
                           crosspoint_buffer_depth=1)
        for cls in (BufferedCrossbarRouter, HierarchicalCrossbarRouter):
            r = _run(cls(cfg), load=0.2, packet_size=8)
            assert r.packets_measured > 0, cls.__name__
            assert not r.saturated, cls.__name__
