"""Byte-identity of the batched hot path beyond the golden snapshots.

The goldens (tests/test_golden_results.py) pin results and extras for
``batch_hot_path`` on and off.  These tests pin the remaining
observable surfaces the ISSUE's acceptance criteria call out: Chrome
trace bytes, fault-injection runs (whose injector draws interleave
with the stage order), and checkpoint round-trips taken mid-run with
the batched path enabled.
"""

import dataclasses

import pytest

from repro.core.batch import HAVE_NUMPY
from repro.core.config import RouterConfig
from repro.core.flit import reset_packet_ids
from repro.faults import FaultPlan, StuckFault, sample_link_faults
from repro.harness.experiment import SwitchSimulation, SweepSettings
from repro.harness.checkpoint import load_checkpoint
from repro.network.netsim import ClosNetworkSimulation, NetworkConfig
from repro.routers.baseline import BaselineRouter
from repro.routers.buffered import BufferedCrossbarRouter
from repro.routers.voq import VoqRouter
from repro.trace import TraceCollector, chrome_trace_json

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="batched hot path requires numpy"
)

CFG = RouterConfig(radix=8, num_vcs=2, subswitch_size=4,
                   local_group_size=4, seed=13)
NET = NetworkConfig(radix=8, levels=2, packet_size=2, seed=13)
FAST = SweepSettings(warmup=100, measure=200, drain=2000)
ROUTERS = [BaselineRouter, BufferedCrossbarRouter, VoqRouter]


def _pair(cfg):
    return cfg, cfg.with_(batch_hot_path=True)


def _run(router_cls, cfg, **kw):
    reset_packet_ids()
    sim = SwitchSimulation(router_cls(cfg), load=0.5, packet_size=2, **kw)
    return sim.run(FAST)


class TestTraceBytes:
    @pytest.mark.parametrize("router_cls", ROUTERS)
    def test_chrome_trace_identical(self, router_cls):
        blobs = []
        for cfg in _pair(CFG):
            reset_packet_ids()
            sim = SwitchSimulation(router_cls(cfg), load=0.5, packet_size=2)
            collector = TraceCollector().attach(sim)
            sim.run(FAST)
            blobs.append(chrome_trace_json(collector))
        assert blobs[0] == blobs[1]


class TestFaultRuns:
    @pytest.mark.parametrize("router_cls", ROUTERS)
    def test_injected_run_identical(self, router_cls):
        stuck_kind = (
            "crosspoint" if router_cls is BufferedCrossbarRouter else "input"
        )
        plan = FaultPlan(
            corrupt_rate=0.02,
            credit_loss_rate=0.01,
            stuck=(StuckFault(cycle=120, where=(1, 0), kind=stuck_kind,
                              until=260),),
        )
        results = [
            _run(router_cls, cfg, faults=plan) for cfg in _pair(CFG)
        ]
        assert results[0].extra["stats.faults.corrupt"] > 0
        assert results[0].__dict__ == results[1].__dict__

    def test_network_link_faults_identical(self):
        topo = ClosNetworkSimulation(NET, 0.3).topology
        links = sample_link_faults(topo, seed=7, count=2, cycle=100,
                                   until=500)
        plan = FaultPlan(credit_loss_rate=0.002, links=links)
        results = []
        for cfg in (NET, dataclasses.replace(NET, batch_hot_path=True)):
            reset_packet_ids()
            sim = ClosNetworkSimulation(cfg, 0.3, faults=plan)
            results.append(sim.run(warmup=200, measure=300, drain=3000))
        assert results[0].extra["stats.faults.link_down"] == 2
        assert results[0].__dict__ == results[1].__dict__


class TestCheckpointInterop:
    @pytest.mark.parametrize("router_cls", ROUTERS)
    @pytest.mark.parametrize("scheduler", ["cycle", "event"])
    def test_mid_run_checkpoint_resumes_identically(
        self, tmp_path, router_cls, scheduler
    ):
        cfg = CFG.with_(batch_hot_path=True)

        reset_packet_ids()
        ref = SwitchSimulation(router_cls(cfg), load=0.5, packet_size=2,
                               scheduler=scheduler)
        ref.start_run(FAST)
        assert ref.advance_run()
        expect = ref.finish_run()

        reset_packet_ids()
        twin = SwitchSimulation(router_cls(cfg), load=0.5, packet_size=2,
                                scheduler=scheduler)
        twin.start_run(FAST)
        done = twin.advance_run(stop_at=150)
        path = tmp_path / "batch.ckpt"
        twin.save_checkpoint(path)
        resumed = load_checkpoint(path)
        if not done:
            assert resumed.advance_run()
        got = resumed.finish_run()
        assert got == expect
        assert got.extra == expect.extra
