"""Integration tests for the whole-program lint driver.

Covers the fixture corpus (golden findings), the content-hash cache,
the JSON/SARIF renderers, the baseline filter, the CLI flags, and the
self-check that the simulator tree lints clean under R001-R012.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis.flow.cache import SummaryCache, content_hash
from repro.analysis.flow.output import (
    SARIF_VERSION,
    apply_baseline,
    findings_to_json,
    findings_to_sarif,
    load_baseline,
    write_baseline,
)
from repro.analysis.lint import (
    Finding,
    filter_rules,
    lint_paths,
    rules_signature,
)
from repro.analysis.rules import all_rules

REPO_ROOT = Path(__file__).resolve().parents[1]
CORPUS = REPO_ROOT / "tests" / "fixtures" / "lint"
GOLDEN = CORPUS / "golden_findings.json"


def run_cli(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        cwd=str(cwd),
        env=env,
        capture_output=True,
        text=True,
    )


def normalize_e999(document):
    """Blank out the interpreter-version-dependent parts of E999.

    ``SyntaxError.msg`` and ``offset`` differ across CPython versions;
    everything else in the corpus output is byte-stable.
    """
    for finding in document["findings"]:
        if finding["code"] == "E999":
            finding["message"] = "syntax error: <normalized>"
            finding["column"] = 0
    return document


# ----------------------------------------------------------------------
# Fixture corpus and golden findings
# ----------------------------------------------------------------------


class TestCorpusGolden:
    def test_corpus_reproduces_golden_findings(self):
        proc = run_cli(
            "lint", "tests/fixtures/lint", "--no-cache", "--format", "json"
        )
        assert proc.returncode == 1, proc.stderr
        got = normalize_e999(json.loads(proc.stdout))
        want = normalize_e999(json.loads(GOLDEN.read_text(encoding="utf-8")))
        # Byte-identical modulo the normalized E999 message/column.
        dump = lambda d: json.dumps(d, indent=2, sort_keys=True)  # noqa: E731
        assert dump(got) == dump(want)

    def test_corpus_covers_every_rule(self):
        want = {"E999"} | {r.code for r in all_rules()}
        got = {
            f["code"]
            for f in json.loads(GOLDEN.read_text(encoding="utf-8"))["findings"]
        }
        assert got == want

    def test_corpus_excluded_from_normal_test_tree_lint(self):
        # `lint tests` must skip the intentionally-broken corpus (the
        # `fixtures` directory is excluded relative to the lint root)...
        findings = lint_paths([str(REPO_ROOT / "tests")])
        corpus_hits = [f for f in findings if "fixtures" in f.path]
        assert corpus_hits == []
        # ...while naming the corpus directly lints it.
        direct = lint_paths([str(CORPUS)])
        assert direct


class TestSourceTreeClean:
    def test_lint_src_is_clean(self):
        findings = lint_paths([str(REPO_ROOT / "src")])
        assert findings == [], "\n".join(f.format() for f in findings)


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------


class TestSummaryCache:
    def _lint(self, cache_path):
        rules = all_rules()
        cache = SummaryCache(
            str(cache_path), signature=rules_signature(rules)
        )
        findings = lint_paths([str(REPO_ROOT / "src" / "repro")], rules, cache)
        return findings, cache

    def test_warm_cache_identical_findings_and_speedup(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        t0 = time.perf_counter()  # lint: disable=R002
        cold, cold_cache = self._lint(cache_path)
        t1 = time.perf_counter()  # lint: disable=R002
        warm, warm_cache = self._lint(cache_path)
        t2 = time.perf_counter()  # lint: disable=R002
        assert warm == cold
        assert cold_cache.hits == 0
        assert warm_cache.misses == 0
        assert warm_cache.hits == cold_cache.misses > 0
        cold_s, warm_s = t1 - t0, t2 - t1
        assert cold_s >= 5 * warm_s, (
            f"warm re-lint not >=5x faster: cold={cold_s:.3f}s "
            f"warm={warm_s:.3f}s"
        )

    def test_edited_file_invalidates_only_itself(self, tmp_path):
        a = tmp_path / "a.py"
        b = tmp_path / "b.py"
        a.write_text("import random\n", encoding="utf-8")
        b.write_text("x = 1\n", encoding="utf-8")
        cache_path = tmp_path / "cache.json"
        rules = all_rules()
        sig = rules_signature(rules)

        cache = SummaryCache(str(cache_path), signature=sig)
        first = lint_paths([str(tmp_path)], rules, cache)
        assert [f.code for f in first] == ["R001"]

        a.write_text("import random\nimport random\n", encoding="utf-8")
        cache = SummaryCache(str(cache_path), signature=sig)
        second = lint_paths([str(tmp_path)], rules, cache)
        assert [f.code for f in second] == ["R001", "R001"]
        assert cache.hits == 1 and cache.misses == 1

    def test_signature_change_invalidates_store(self, tmp_path):
        a = tmp_path / "a.py"
        a.write_text("import random\n", encoding="utf-8")
        cache_path = tmp_path / "cache.json"
        rules = all_rules()
        cache = SummaryCache(str(cache_path), signature=rules_signature(rules))
        lint_paths([str(tmp_path)], rules, cache)

        stale = SummaryCache(str(cache_path), signature="other-signature")
        lint_paths([str(tmp_path)], rules, stale)
        assert stale.hits == 0

    def test_syntax_error_files_are_cached(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        cache_path = tmp_path / "cache.json"
        rules = all_rules()
        sig = rules_signature(rules)
        cold = lint_paths(
            [str(tmp_path)], rules, SummaryCache(str(cache_path), signature=sig)
        )
        warm_cache = SummaryCache(str(cache_path), signature=sig)
        warm = lint_paths([str(tmp_path)], rules, warm_cache)
        assert warm == cold
        assert [f.code for f in warm] == ["E999"]
        assert warm[0].line == 1 and warm[0].column > 0
        assert warm_cache.hits == 1

    def test_content_hash_is_sha256(self):
        assert content_hash(b"") == (
            "e3b0c44298fc1c149afbf4c8996fb924"
            "27ae41e4649b934ca495991b7852b855"
        )


# ----------------------------------------------------------------------
# Output formats
# ----------------------------------------------------------------------


SARIF_MINI_SCHEMA = {
    # Hand-reduced from the SARIF 2.1.0 schema: the required shape for
    # a valid static-analysis log that GitHub code scanning ingests.
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message", "ruleId"],
                            "properties": {
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer",
                                    "minimum": 0,
                                },
                                "level": {
                                    "enum": [
                                        "none", "note", "warning", "error",
                                    ],
                                },
                                "locations": {"type": "array"},
                            },
                        },
                    },
                },
            },
        },
    },
}


class TestOutputFormats:
    def _corpus_findings(self):
        return lint_paths([str(CORPUS)])

    def test_json_document_is_deterministic(self):
        findings = self._corpus_findings()
        assert findings_to_json(findings) == findings_to_json(findings)
        doc = json.loads(findings_to_json(findings))
        assert doc["version"] == 1
        assert doc["count"] == len(findings) == len(doc["findings"])

    def test_e999_location_in_json(self):
        doc = json.loads(findings_to_json(self._corpus_findings()))
        e999 = [f for f in doc["findings"] if f["code"] == "E999"]
        assert len(e999) == 1
        assert e999[0]["path"].endswith("e999_syntax_error.py")
        assert e999[0]["line"] == 3
        assert e999[0]["column"] > 0

    def test_sarif_validates_against_schema(self):
        jsonschema = pytest.importorskip("jsonschema")
        meta = {r.code: (r.name, r.description) for r in all_rules()}
        doc = json.loads(findings_to_sarif(self._corpus_findings(), meta))
        jsonschema.validate(doc, SARIF_MINI_SCHEMA)
        assert doc["version"] == SARIF_VERSION

    def test_sarif_rule_indices_resolve(self):
        meta = {r.code: (r.name, r.description) for r in all_rules()}
        doc = json.loads(findings_to_sarif(self._corpus_findings(), meta))
        run = doc["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted(rule_ids)
        assert "E999" in rule_ids  # resolvable even though not a rule
        for result in run["results"]:
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1

    def test_sarif_uris_are_relative_forward_slash(self):
        meta = {r.code: (r.name, r.description) for r in all_rules()}
        proc = run_cli(
            "lint", "tests/fixtures/lint", "--no-cache", "--format", "sarif"
        )
        doc = json.loads(proc.stdout)
        for result in doc["runs"][0]["results"]:
            loc = result["locations"][0]["physicalLocation"]
            uri = loc["artifactLocation"]["uri"]
            assert not uri.startswith("/") and "\\" not in uri
            assert loc["artifactLocation"]["uriBaseId"] == "SRCROOT"


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------


class TestBaseline:
    def test_roundtrip_and_filter(self, tmp_path):
        old = Finding("src/a.py", 3, "R001", "import of random")
        new = Finding("src/b.py", 9, "R002", "time.time()")
        path = tmp_path / "baseline.json"
        write_baseline(str(path), [old])
        baseline = load_baseline(str(path))
        assert apply_baseline([old, new], baseline) == [new]

    def test_baseline_survives_line_moves(self, tmp_path):
        old = Finding("src/a.py", 3, "R001", "import of random")
        path = tmp_path / "baseline.json"
        write_baseline(str(path), [old])
        moved = Finding("src/a.py", 42, "R001", "import of random")
        assert apply_baseline([moved], load_baseline(str(path))) == []

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) == set()

    def test_checked_in_baseline_is_empty(self):
        # The repo baseline grandfathers nothing: src lints clean.
        baseline = json.loads(
            (REPO_ROOT / ".lint-baseline.json").read_text(encoding="utf-8")
        )
        assert baseline["findings"] == []


# ----------------------------------------------------------------------
# Rule catalogue and CLI
# ----------------------------------------------------------------------


class TestRuleCatalogue:
    def test_all_rules_deterministic_order(self):
        codes = [r.code for r in all_rules()]
        assert codes == sorted(codes)
        assert codes == [r.code for r in all_rules()]
        assert codes == [
            "R001", "R002", "R003", "R004", "R005", "R006",
            "R007", "R008", "R009", "R010", "R011", "R012",
            "R013", "R014",
        ]

    def test_filter_rules_select_and_ignore(self):
        rules = all_rules()
        assert [r.code for r in filter_rules(rules, select=["R001"])] == ["R001"]
        assert "R009" not in {
            r.code for r in filter_rules(rules, ignore=["R009"])
        }
        # E999 is filterable output, not a rule.
        assert filter_rules(rules, select=["E999"]) == []
        with pytest.raises(ValueError):
            filter_rules(rules, select=["R999"])


class TestLintCli:
    def test_select_limits_codes(self):
        proc = run_cli(
            "lint", "tests/fixtures/lint", "--no-cache",
            "--select", "R009", "--format", "json",
        )
        doc = json.loads(proc.stdout)
        assert doc["count"] > 0
        assert {f["code"] for f in doc["findings"]} == {"R009"}

    def test_ignore_drops_codes(self):
        proc = run_cli(
            "lint", "tests/fixtures/lint", "--no-cache",
            "--ignore", "R009,R010", "--format", "json",
        )
        codes = {
            f["code"] for f in json.loads(proc.stdout)["findings"]
        }
        assert codes and not codes & {"R009", "R010"}

    def test_unknown_code_is_usage_error(self):
        proc = run_cli("lint", "src", "--select", "R999")
        assert proc.returncode == 2
        assert "unknown rule code" in proc.stdout

    def test_output_file_and_exit_code(self, tmp_path):
        out = tmp_path / "findings.json"
        proc = run_cli(
            "lint", "tests/fixtures/lint", "--no-cache",
            "--format", "json", "--output", str(out),
        )
        assert proc.returncode == 1
        assert json.loads(out.read_text(encoding="utf-8"))["count"] > 0

    def test_write_baseline_then_clean(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        wrote = run_cli(
            "lint", "tests/fixtures/lint", "--no-cache",
            "--baseline", str(baseline), "--write-baseline",
        )
        assert wrote.returncode == 0
        relint = run_cli(
            "lint", "tests/fixtures/lint", "--no-cache",
            "--baseline", str(baseline),
        )
        assert relint.returncode == 0

    def test_write_baseline_requires_baseline_path(self):
        proc = run_cli("lint", "src", "--write-baseline")
        assert proc.returncode == 2
