"""Direct tests of the Router base-class mechanics and bookkeeping."""

import pytest

from repro.core.config import RouterConfig
from repro.core.flit import make_packet
from repro.routers.base import Router, RouterStats
from repro.routers.buffered import BufferedCrossbarRouter
from repro.routers.voq import VoqRouter

CFG = RouterConfig(radix=4, num_vcs=2, subswitch_size=2, local_group_size=2)


class _PassthroughRouter(Router):
    """Minimal concrete Router: grants every input-queue head straight
    to its output when free (used to test base-class plumbing)."""

    def _advance(self):
        now = self.cycle
        for i in range(self.config.radix):
            if not self.input_busy.free(i, now):
                continue
            for vc in range(self.config.num_vcs):
                flit = self.inputs[i][vc].head()
                if flit is None:
                    continue
                out = flit.dest
                if not self.output_busy.free(out, now):
                    continue
                state = self.output_vcs[out]
                if flit.is_head:
                    if not state.is_free(flit.vc):
                        continue
                    state.allocate(flit.vc, flit.packet_id)
                elif state.owner(flit.vc) != flit.packet_id:
                    continue
                flit.out_vc = flit.vc
                self.inputs[i][vc].pop()
                self.input_busy.reserve(i, now, self.config.flit_cycles)
                self._start_traversal(flit, out)
                break


class TestBasePlumbing:
    def test_ejection_timing(self):
        r = _PassthroughRouter(CFG)
        (flit,) = make_packet(dest=2, size=1, src=0)
        r.accept(0, flit)
        r.step()  # grant at cycle 0
        for _ in range(CFG.flit_cycles - 1):
            r.step()
            assert not r.ejected
        r.step()
        out = r.drain_ejected()
        assert len(out) == 1
        assert out[0][1] == CFG.flit_cycles

    def test_drain_ejected_clears(self):
        r = _PassthroughRouter(CFG)
        (flit,) = make_packet(dest=1, size=1, src=0)
        r.accept(0, flit)
        for _ in range(CFG.flit_cycles + 2):
            r.step()
        assert r.drain_ejected()
        assert not r.drain_ejected()

    def test_vc_released_after_tail_traversal(self):
        r = _PassthroughRouter(CFG)
        flits = make_packet(dest=2, size=2, src=0)
        for f in flits:
            r.accept(0, f)
        # Run until both flits are out.
        for _ in range(40):
            r.step()
        assert r.output_vcs[2].is_free(0)

    def test_injected_at_stamped(self):
        r = _PassthroughRouter(CFG)
        for _ in range(7):
            r.step()
        (flit,) = make_packet(dest=1, size=1, src=0)
        r.accept(0, flit)
        assert flit.injected_at == 7

    def test_stats_dataclass(self):
        stats = RouterStats()
        stats.bump("custom")
        stats.bump("custom", 4)
        assert stats.extra["custom"] == 5

    def test_repr(self):
        r = _PassthroughRouter(CFG)
        text = repr(r)
        assert "k=4" in text and "cycle=0" in text

    def test_abstract_advance(self):
        r = Router(CFG)
        with pytest.raises(NotImplementedError):
            r.step()


class TestOccupancyBookkeeping:
    def test_buffered_occupied_sets_empty_after_drain(self):
        router = BufferedCrossbarRouter(CFG)
        for src in range(4):
            for f in make_packet(dest=(src + 1) % 4, size=3, src=src):
                router.accept(src, f)
        for _ in range(400):
            router.step()
            router.drain_ejected()
            if router.idle():
                break
        assert router.idle()
        assert all(not occ for occ in router._occupied)

    def test_voq_occupied_sets_empty_after_drain(self):
        router = VoqRouter(CFG)
        for src in range(4):
            for f in make_packet(dest=(src + 2) % 4, size=3, src=src):
                router.accept(src, f)
        for _ in range(600):
            router.step()
            router.drain_ejected()
            if router.idle():
                break
        assert router.idle()
        assert all(not occ for occ in router._occupied)

    def test_occupied_consistent_under_load(self):
        """The occupied index must exactly mirror buffer contents."""
        from repro.harness.experiment import SwitchSimulation

        router = BufferedCrossbarRouter(CFG)
        sim = SwitchSimulation(router, load=0.7)
        for _ in range(300):
            sim.step()
            for j in range(CFG.radix):
                truth = {
                    i
                    for i in range(CFG.radix)
                    if router.crosspoints[i][j].occupancy() > 0
                }
                assert truth == router._occupied[j]
