"""Behavioral tests for the hierarchical crossbar (Section 6)."""

import pytest

from repro.core.config import RouterConfig
from repro.core.flit import make_packet
from repro.harness.experiment import SwitchSimulation, SweepSettings
from repro.routers.hierarchical import HierarchicalCrossbarRouter
from repro.traffic.patterns import UniformRandom, WorstCaseHierarchical

CFG = RouterConfig(radix=8, num_vcs=2, subswitch_size=4, local_group_size=4)
FAST = SweepSettings(warmup=400, measure=800, drain=50)


def _drain(router, max_cycles=1500):
    out = []
    for _ in range(max_cycles):
        router.step()
        out.extend(router.drain_ejected())
        if router.idle():
            break
    return out


class TestStructure:
    def test_subswitch_grid_shape(self):
        router = HierarchicalCrossbarRouter(CFG)
        assert router.num_sub == 2
        assert len(router.sub) == 2
        assert len(router.sub[0]) == 2

    def test_p_equals_k_single_subswitch(self):
        cfg = CFG.with_(subswitch_size=8)
        router = HierarchicalCrossbarRouter(cfg)
        assert router.num_sub == 1

    def test_p_of_one(self):
        """p=1 degenerates to a fully buffered crossbar structure."""
        cfg = CFG.with_(subswitch_size=1)
        router = HierarchicalCrossbarRouter(cfg)
        assert router.num_sub == 8
        (flit,) = make_packet(dest=5, size=1, src=2)
        router.accept(2, flit)
        out = _drain(router)
        assert len(out) == 1


class TestRoutingThroughSubswitches:
    @pytest.mark.parametrize("src,dest", [(0, 0), (0, 7), (7, 0), (3, 5)])
    def test_any_input_reaches_any_output(self, src, dest):
        router = HierarchicalCrossbarRouter(CFG)
        (flit,) = make_packet(dest=dest, size=1, src=src)
        router.accept(src, flit)
        out = _drain(router)
        assert len(out) == 1
        assert out[0][0].dest == dest

    def test_multi_flit_packet_through_subswitch(self):
        router = HierarchicalCrossbarRouter(CFG)
        flits = make_packet(dest=6, size=5, src=1)
        for f in flits:
            router.accept(1, f)
        out = _drain(router)
        assert [f.flit_index for f, _ in out] == [0, 1, 2, 3, 4]

    def test_deeper_pipeline_than_flat_buffered(self):
        """Two stages of buffering add latency relative to the fully
        buffered crossbar's single crosspoint hop."""
        from repro.routers.buffered import BufferedCrossbarRouter

        def zero_load(cls):
            r = cls(CFG)
            (flit,) = make_packet(dest=7, size=1, src=0)
            r.accept(0, flit)
            (_, cycle), = _drain(r)
            return cycle

        assert zero_load(HierarchicalCrossbarRouter) > zero_load(
            BufferedCrossbarRouter
        )


class TestLocalVcAllocation:
    def test_writer_lock_prevents_interleave(self):
        """Two packets from different subswitch inputs bound for the
        same output VC must not interleave in the output buffer."""
        cfg = CFG.with_(num_vcs=1)
        router = HierarchicalCrossbarRouter(cfg)
        pa = make_packet(dest=2, size=4, src=0)
        pb = make_packet(dest=2, size=4, src=1)
        for f in pa:
            router.accept(0, f)
        for f in pb:
            router.accept(1, f)
        out = _drain(router, max_cycles=3000)
        assert len(out) == 8
        ids = [f.packet_id for f, _ in out]
        # One packet fully precedes the other.
        switch_points = sum(
            1 for a, b in zip(ids, ids[1:]) if a != b
        )
        assert switch_points == 1

    def test_local_vc_failures_counted(self):
        cfg = CFG.with_(num_vcs=1)
        router = HierarchicalCrossbarRouter(cfg)
        for src in (0, 1):
            for f in make_packet(dest=2, size=6, src=src):
                router.accept(src, f)
        _drain(router, max_cycles=3000)
        assert router.stats.spec_vc_failures > 0


class TestPerformance:
    def test_near_buffered_on_uniform(self):
        """Figure 17(a): on uniform random traffic the hierarchical
        crossbar performs about as well as the fully buffered one."""
        from repro.routers.buffered import BufferedCrossbarRouter

        cfg = RouterConfig(radix=16, subswitch_size=4, local_group_size=4)
        hier = SwitchSimulation(
            HierarchicalCrossbarRouter(cfg), load=1.0
        ).run(FAST)
        full = SwitchSimulation(
            BufferedCrossbarRouter(cfg), load=1.0
        ).run(FAST)
        assert hier.throughput > full.throughput - 0.07

    def test_worst_case_hurts_hierarchical(self):
        """Figure 17(b): the worst-case pattern concentrates load on
        the diagonal subswitches and costs throughput."""
        cfg = RouterConfig(radix=16, subswitch_size=4, local_group_size=4)
        uniform = SwitchSimulation(
            HierarchicalCrossbarRouter(cfg), load=1.0,
            pattern=UniformRandom(16),
        ).run(FAST)
        worst = SwitchSimulation(
            HierarchicalCrossbarRouter(cfg), load=1.0,
            pattern=WorstCaseHierarchical(16, 4),
        ).run(FAST)
        assert worst.throughput < uniform.throughput - 0.1

    def test_smaller_subswitch_better_on_worst_case(self):
        """Figure 17(b): 'the benefit of having smaller subswitch size
        is apparent'."""
        cfg = RouterConfig(radix=16, subswitch_size=8, local_group_size=4)
        big = SwitchSimulation(
            HierarchicalCrossbarRouter(cfg), load=1.0,
            pattern=WorstCaseHierarchical(16, 8),
        ).run(FAST)
        small_cfg = cfg.with_(subswitch_size=2)
        small = SwitchSimulation(
            HierarchicalCrossbarRouter(small_cfg), load=1.0,
            pattern=WorstCaseHierarchical(16, 2),
        ).run(FAST)
        assert small.throughput > big.throughput

    def test_beats_unbuffered_baseline_on_worst_case(self):
        """Figure 17(b): hierarchical still outperforms the baseline."""
        from repro.routers.distributed import DistributedRouter

        cfg = RouterConfig(radix=16, subswitch_size=4, local_group_size=4)
        pattern = WorstCaseHierarchical(16, 4)
        hier = SwitchSimulation(
            HierarchicalCrossbarRouter(cfg), load=1.0, pattern=pattern
        ).run(FAST)
        base = SwitchSimulation(
            DistributedRouter(cfg), load=1.0, pattern=pattern
        ).run(FAST)
        assert hier.throughput > base.throughput


class TestCredits:
    def test_subswitch_input_credits_restored_after_drain(self):
        cfg = CFG
        router = HierarchicalCrossbarRouter(cfg)
        for src in range(8):
            for f in make_packet(dest=(src + 3) % 8, size=4, src=src):
                router.accept(src, f)
        _drain(router, max_cycles=3000)
        assert router.idle()
        s = cfg.num_subswitches_per_side
        for i in range(cfg.radix):
            for c in range(s):
                for vc in range(cfg.num_vcs):
                    counter = router._in_credits[i][c][vc]
                    assert counter.free == counter.capacity


class TestResidentCounter:
    def test_resident_tracks_buffer_occupancy(self):
        """The fast-path resident counter must always equal the actual
        buffered-flit count (crossing flits are counted separately)."""
        from repro.harness.experiment import SwitchSimulation

        cfg = RouterConfig(radix=16, num_vcs=2, subswitch_size=4,
                           local_group_size=4)
        router = HierarchicalCrossbarRouter(cfg)
        sim = SwitchSimulation(router, load=0.7, packet_size=3)
        for _ in range(400):
            sim.step()
            for row in router.sub:
                for sub in row:
                    buffered = sub.occupancy() - len(sub.crossing)
                    assert sub.resident == buffered

    def test_resident_zero_after_drain(self):
        router = HierarchicalCrossbarRouter(CFG)
        for src in range(8):
            for f in make_packet(dest=(src + 3) % 8, size=2, src=src):
                router.accept(src, f)
        _drain(router, max_cycles=2000)
        for row in router.sub:
            for sub in row:
                assert sub.resident == 0
