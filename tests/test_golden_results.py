"""Seed-pinned golden results for every simulation stack.

These snapshots pin the *exact* numeric output of a seeded run for all
switch organizations and the Clos network.  They were generated on the
pre-`repro.engine` code and must stay byte-identical across refactors
of the simulation kernel: any drift means the refactor changed
simulation behavior, not just structure.

The snapshot deliberately compares named scalar fields (and the two
harness-owned ``extra`` entries) rather than the whole ``extra`` dict,
so purely *additive* diagnostics — e.g. folding ``RouterStats.extra``
counters into the result — do not invalidate the goldens.

Regenerate (only when an intentional behavior change is made)::

    PYTHONPATH=src python tests/test_golden_results.py
"""

from __future__ import annotations

import pytest

from repro.core.config import RouterConfig
from repro.harness.experiment import SweepSettings, SwitchSimulation
from repro.network.netsim import ClosNetworkSimulation, NetworkConfig
from repro.routers.baseline import BaselineRouter
from repro.routers.buffered import BufferedCrossbarRouter
from repro.routers.distributed import DistributedRouter
from repro.routers.hierarchical import HierarchicalCrossbarRouter
from repro.routers.shared_buffer import SharedBufferCrossbarRouter
from repro.routers.voq import VoqRouter

SWITCH_CONFIG = RouterConfig(
    radix=8,
    num_vcs=4,
    subswitch_size=4,
    local_group_size=4,
    input_buffer_depth=16,
    seed=11,
)
SWITCH_LOAD = 0.35
SWITCH_PACKET_SIZE = 2
SWITCH_SETTINGS = SweepSettings(warmup=300, measure=400, drain=6000)

NETWORK_CONFIG = NetworkConfig(radix=8, levels=2, packet_size=2, seed=11)
NETWORK_LOAD = 0.3
NETWORK_WINDOWS = dict(warmup=200, measure=300, drain=4000)

ROUTERS = {
    "baseline": BaselineRouter,
    "distributed": DistributedRouter,
    "buffered": BufferedCrossbarRouter,
    "shared-buffer": SharedBufferCrossbarRouter,
    "hierarchical": HierarchicalCrossbarRouter,
    "voq": VoqRouter,
}

#: Scalar fields of RunResult pinned by the snapshot.
FIELDS = (
    "offered_load",
    "avg_latency",
    "p99_latency",
    "max_latency",
    "throughput",
    "packets_measured",
    "cycles",
    "saturated",
)
#: Harness-owned extra entries pinned for switch runs.
SWITCH_EXTRAS = ("undelivered", "source_backlog")


def _run_switch(name: str, scheduler: str = "cycle",
                batch: bool = False) -> dict:
    config = SWITCH_CONFIG.with_(batch_hot_path=batch)
    sim = SwitchSimulation(
        ROUTERS[name](config),
        load=SWITCH_LOAD,
        packet_size=SWITCH_PACKET_SIZE,
        scheduler=scheduler,
    )
    result = sim.run(SWITCH_SETTINGS)
    snap = {f: getattr(result, f) for f in FIELDS}
    for key in SWITCH_EXTRAS:
        snap[key] = result.extra[key]
    return snap


def _run_network(scheduler: str = "cycle", batch: bool = False) -> dict:
    import dataclasses

    config = dataclasses.replace(NETWORK_CONFIG, batch_hot_path=batch)
    sim = ClosNetworkSimulation(config, NETWORK_LOAD,
                                scheduler=scheduler)
    result = sim.run(**NETWORK_WINDOWS)
    return {f: getattr(result, f) for f in FIELDS}


GOLDEN: dict = {
    "baseline": {
        "avg_latency": 16.582089552238806,
        "cycles": 763,
        "max_latency": 63,
        "offered_load": 0.35,
        "p99_latency": 46.339999999999975,
        "packets_measured": 134,
        "saturated": False,
        "source_backlog": 1.0,
        "throughput": 0.33625,
        "undelivered": 0.0,
    },
    "buffered": {
        "avg_latency": 17.48507462686567,
        "cycles": 736,
        "max_latency": 36,
        "offered_load": 0.35,
        "p99_latency": 35.66999999999999,
        "packets_measured": 134,
        "saturated": False,
        "source_backlog": 2.0,
        "throughput": 0.33625,
        "undelivered": 0.0,
    },
    "clos-network": {
        "avg_latency": 35.0507614213198,
        "cycles": 543,
        "max_latency": 89,
        "offered_load": 0.3,
        "p99_latency": 72.27999999999994,
        "packets_measured": 197,
        "saturated": False,
        "throughput": 0.31916666666666665,
    },
    "distributed": {
        "avg_latency": 18.992537313432837,
        "cycles": 740,
        "max_latency": 51,
        "offered_load": 0.35,
        "p99_latency": 46.339999999999975,
        "packets_measured": 134,
        "saturated": False,
        "source_backlog": 4.0,
        "throughput": 0.3375,
        "undelivered": 0.0,
    },
    "hierarchical": {
        "avg_latency": 21.33582089552239,
        "cycles": 736,
        "max_latency": 40,
        "offered_load": 0.35,
        "p99_latency": 37.339999999999975,
        "packets_measured": 134,
        "saturated": False,
        "source_backlog": 2.0,
        "throughput": 0.3375,
        "undelivered": 0.0,
    },
    "shared-buffer": {
        "avg_latency": 20.559701492537314,
        "cycles": 736,
        "max_latency": 42,
        "offered_load": 0.35,
        "p99_latency": 39.34999999999994,
        "packets_measured": 134,
        "saturated": False,
        "source_backlog": 2.0,
        "throughput": 0.34,
        "undelivered": 0.0,
    },
    "voq": {
        "avg_latency": 14.902985074626866,
        "cycles": 740,
        "max_latency": 47,
        "offered_load": 0.35,
        "p99_latency": 43.00999999999996,
        "packets_measured": 134,
        "saturated": False,
        "source_backlog": 4.0,
        "throughput": 0.33625,
        "undelivered": 0.0,
    },
}


def _assert_matches(snap: dict, golden: dict, label: str) -> None:
    for key, expected in golden.items():
        actual = snap[key]
        assert actual == expected, (
            f"{label}: field {key!r} drifted: expected {expected!r}, "
            f"got {actual!r} — the simulation kernel is no longer "
            f"byte-identical to the seed behavior"
        )


@pytest.mark.parametrize("batch", [False, True], ids=["scalar", "batch"])
@pytest.mark.parametrize("scheduler", ["cycle", "event"])
@pytest.mark.parametrize("name", sorted(ROUTERS))
def test_switch_golden(name: str, scheduler: str, batch: bool) -> None:
    """The batched hot path must reproduce the same goldens bit for bit
    (it is a no-op on routers that have no batched stage)."""
    _assert_matches(
        _run_switch(name, scheduler, batch), GOLDEN[name],
        f"{name}/{scheduler}/{'batch' if batch else 'scalar'}",
    )


@pytest.mark.parametrize("batch", [False, True], ids=["scalar", "batch"])
@pytest.mark.parametrize("scheduler", ["cycle", "event"])
def test_network_golden(scheduler: str, batch: bool) -> None:
    _assert_matches(
        _run_network(scheduler, batch), GOLDEN["clos-network"],
        f"clos-network/{scheduler}/{'batch' if batch else 'scalar'}",
    )


def _generate() -> dict:
    out = {name: _run_switch(name) for name in sorted(ROUTERS)}
    out["clos-network"] = _run_network()
    return out


if __name__ == "__main__":
    import pprint

    print("GOLDEN = ", end="")
    pprint.pprint(_generate(), sort_dicts=True)
