"""Behavioral tests for the shared-buffer crossbar (Section 5.4)."""

from repro.core.config import RouterConfig
from repro.core.flit import make_packet
from repro.harness.experiment import SwitchSimulation, SweepSettings
from repro.routers.shared_buffer import SharedBufferCrossbarRouter

CFG = RouterConfig(radix=8, num_vcs=2, subswitch_size=4, local_group_size=4)
FAST = SweepSettings(warmup=400, measure=800, drain=50)


def _drain(router, max_cycles=1500):
    out = []
    for _ in range(max_cycles):
        router.step()
        out.extend(router.drain_ejected())
        if router.idle():
            break
    return out


class TestAckNackProtocol:
    def test_flit_retained_until_ack(self):
        """The original flit stays in the input buffer until the ACK
        from output VC allocation returns (Section 5.4)."""
        router = SharedBufferCrossbarRouter(CFG)
        (flit,) = make_packet(dest=3, size=1, src=0)
        router.accept(0, flit)
        router.step()  # head eligibility
        router.step()  # launch
        # While the copy flies and before the ACK, the original remains.
        assert len(router.inputs[0][0]) == 1
        _drain(router)
        assert len(router.inputs[0][0]) == 0
        assert router.stats.flits_ejected == 1

    def test_nack_on_vc_conflict(self):
        """A head arriving at the crosspoint while its VC class is held
        is dropped and NACKed."""
        cfg = CFG.with_(num_vcs=1)
        router = SharedBufferCrossbarRouter(cfg)
        pa = make_packet(dest=2, size=6, src=0)
        pb = make_packet(dest=2, size=6, src=1)
        for f in pa:
            router.accept(0, f)
        for f in pb:
            router.accept(1, f)
        out = _drain(router, max_cycles=3000)
        assert len(out) == 12
        assert router.stats.nacks > 0

    def test_nack_restores_credit(self):
        cfg = CFG.with_(num_vcs=1, crosspoint_buffer_depth=4)
        router = SharedBufferCrossbarRouter(cfg)
        pa = make_packet(dest=2, size=6, src=0)
        pb = make_packet(dest=2, size=6, src=1)
        for f in pa:
            router.accept(0, f)
        for f in pb:
            router.accept(1, f)
        _drain(router, max_cycles=3000)
        # After draining, every crosspoint credit is back to capacity.
        for i in range(cfg.radix):
            for j in range(cfg.radix):
                assert router._credits[i][j].free == 4

    def test_no_nacks_without_vc_contention(self):
        router = SharedBufferCrossbarRouter(CFG)
        for src in range(4):
            (f,) = make_packet(dest=src + 4, size=1, src=src)
            router.accept(src, f)
        _drain(router)
        assert router.stats.nacks == 0


class TestPerformance:
    def test_decoupling_beats_unbuffered_baseline(self):
        """Section 5.4: the shared buffer still decouples input and
        output arbitration, 'providing good performance over a
        non-buffered crossbar'."""
        from repro.routers.distributed import DistributedRouter

        cfg = RouterConfig(radix=16, subswitch_size=4, local_group_size=4)
        shared = SwitchSimulation(
            SharedBufferCrossbarRouter(cfg), load=1.0
        ).run(FAST)
        base = SwitchSimulation(DistributedRouter(cfg), load=1.0).run(FAST)
        assert shared.throughput > base.throughput

    def test_below_fully_buffered_with_vc_contention(self):
        """The NACK protocol costs throughput relative to per-VC
        crosspoint buffers when packets contend for VCs."""
        from repro.routers.buffered import BufferedCrossbarRouter

        cfg = RouterConfig(radix=16, num_vcs=2, subswitch_size=4,
                           local_group_size=4, input_buffer_depth=32)
        shared = SwitchSimulation(
            SharedBufferCrossbarRouter(cfg), load=1.0, packet_size=4
        ).run(FAST)
        full = SwitchSimulation(
            BufferedCrossbarRouter(cfg), load=1.0, packet_size=4
        ).run(FAST)
        assert full.throughput > shared.throughput
