"""Tests for repro.trace: lifecycle collection, filters, exports.

Three layers of checking:

* unit tests for :class:`TraceFilter`, the ring buffer, and the Chrome
  trace / stage-breakdown consumers;
* property-based lifecycle invariants (hypothesis workloads through
  every switch organization): stage timestamps are monotone, every
  traced flit is injected and ejected exactly once, and every observed
  stage name comes from the router's declared ``TRACE_STAGES``;
* a differential test pinning measured contention-free stage spans to
  the static :func:`repro.core.pipeline_diagram.measured_pipeline`
  tables (and, where the paper's figure pipelines apply, to
  ``head_flit_latency(pipeline_for(...))``).
"""

import json
from collections import defaultdict

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import RouterConfig
from repro.core.flit import make_packet, reset_packet_ids
from repro.core.pipeline_diagram import (
    head_flit_latency,
    measured_pipeline,
    pipeline_for,
)
from repro.harness.experiment import SwitchSimulation, SweepSettings
from repro.routers import (
    BaselineRouter,
    BufferedCrossbarRouter,
    DistributedRouter,
    HierarchicalCrossbarRouter,
    SharedBufferCrossbarRouter,
    VoqRouter,
)
from repro.routers.base import RouterStats
from repro.trace import (
    COUNT_ONLY,
    TraceCollector,
    TraceFilter,
    chrome_trace_events,
    chrome_trace_json,
    dump_chrome_trace,
    format_stage_breakdown,
    stage_breakdown,
    stage_spans,
)

#: (architecture key for measured_pipeline, router class, config extras)
ARCH_CASES = [
    ("baseline", BaselineRouter, {}),
    ("cva", DistributedRouter, {"vc_allocator": "cva"}),
    ("ova", DistributedRouter, {"vc_allocator": "ova"}),
    ("buffered", BufferedCrossbarRouter, {}),
    ("shared-buffer", SharedBufferCrossbarRouter, {}),
    ("hierarchical", HierarchicalCrossbarRouter, {}),
    ("voq", VoqRouter, {}),
]

ALL_ROUTERS = sorted({cls for _, cls, _ in ARCH_CASES}, key=lambda c: c.__name__)


def _config(**extra):
    return RouterConfig(
        radix=8, num_vcs=2, subswitch_size=4, local_group_size=4,
        input_buffer_depth=8, **extra,
    )


def _drive(router, packets, collector=None, cycles=6000):
    """Inject packets (respecting buffer space) and drain fully."""
    pending = defaultdict(list)
    for src, dest, size, vc in packets:
        for f in make_packet(dest=dest, size=size, src=src):
            f.vc = vc
            pending[(src, vc)].append(f)
    delivered = []
    for _ in range(cycles):
        for (src, vc), flits in pending.items():
            while flits and router.input_space(src, vc) > 0:
                router.accept(src, flits.pop(0))
        router.step()
        delivered.extend(router.drain_ejected())
        if router.idle() and not any(pending.values()):
            break
    assert router.idle() and not any(pending.values()), "did not drain"
    return delivered


packets_strategy = st.lists(
    st.tuples(
        st.integers(0, 7),  # src
        st.integers(0, 7),  # dest
        st.integers(1, 4),  # size
        st.integers(0, 1),  # vc
    ),
    min_size=1,
    max_size=15,
)


# ----------------------------------------------------------------------
# TraceFilter
# ----------------------------------------------------------------------


class TestTraceFilter:
    def _flit(self, packet_id, vc=0):
        (f,) = make_packet(dest=3, size=1, src=0, packet_id=packet_id)
        f.vc = vc
        return f

    def test_default_admits_everything(self):
        assert TraceFilter().admits(self._flit(17), port=5)

    def test_every_nth_samples_by_packet_id(self):
        filt = TraceFilter(every_nth=3)
        admitted = [p for p in range(9) if filt.admits(self._flit(p), 0)]
        assert admitted == [0, 3, 6]

    def test_flits_of_one_packet_kept_together(self):
        filt = TraceFilter(every_nth=2)
        flits = make_packet(dest=1, size=4, src=0, packet_id=4)
        assert all(filt.admits(f, 0) for f in flits)

    def test_port_and_vc_filters(self):
        filt = TraceFilter(ports=frozenset({1, 2}), vcs=frozenset({0}))
        assert filt.admits(self._flit(1, vc=0), port=1)
        assert not filt.admits(self._flit(1, vc=0), port=3)
        assert not filt.admits(self._flit(1, vc=1), port=1)

    def test_packet_id_set(self):
        filt = TraceFilter(packets=frozenset({7}))
        assert filt.admits(self._flit(7), 0)
        assert not filt.admits(self._flit(8), 0)

    def test_count_only_admits_nothing(self):
        assert not COUNT_ONLY.admits(self._flit(0), 0)

    def test_every_nth_validated(self):
        with pytest.raises(ValueError):
            TraceFilter(every_nth=0)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TraceCollector(capacity=0)


# ----------------------------------------------------------------------
# Collector mechanics
# ----------------------------------------------------------------------


class TestCollectorMechanics:
    def test_ring_buffer_evicts_oldest(self):
        router = BaselineRouter(_config())
        collector = TraceCollector(capacity=2).attach(router)
        packets = [(0, d, 1, 0) for d in (1, 2, 3)]
        _drive(router, packets)
        assert collector.opened == 3
        assert collector.evicted == 1
        recs = collector.records()
        assert len(recs) == 2
        # The oldest (dest=1) record was evicted.
        assert sorted(r.dest for r in recs) == [2, 3]

    def test_count_only_keeps_aggregates(self):
        router = BaselineRouter(_config())
        collector = TraceCollector(trace_filter=COUNT_ONLY).attach(router)
        _drive(router, [(0, 1, 2, 0), (1, 2, 1, 0)])
        assert collector.records() == []
        assert collector.opened == 0
        assert collector.accepts == 3
        assert collector.ejects == 3
        assert collector.grants >= 2

    def test_filtered_ports_only(self):
        router = BaselineRouter(_config())
        collector = TraceCollector(
            trace_filter=TraceFilter(ports=frozenset({0}))
        ).attach(router)
        _drive(router, [(0, 2, 1, 0), (1, 3, 1, 0)])
        recs = collector.records()
        assert {r.in_port for r in recs} == {0}

    def test_attach_unwraps_simulation(self):
        sim = SwitchSimulation(
            BaselineRouter(_config()), load=0.2, seed=3,
        )
        collector = TraceCollector().attach(sim)
        assert collector.label == "BaselineRouter"
        assert collector.declared_stages == BaselineRouter.TRACE_STAGES

    def test_fold_stats_counters(self):
        router = HierarchicalCrossbarRouter(_config())
        collector = TraceCollector().attach(router)
        _drive(router, [(0, 5, 2, 0), (1, 6, 1, 0)])
        collector.cycles = collector.cycles or 100  # standalone drive
        stats = RouterStats()
        collector.fold_stats(stats)
        assert stats.extra["trace.records"] == collector.completed
        assert "trace.chan_util_mean_permille" in stats.extra
        spec_keys = [k for k in stats.extra if k.startswith("trace.spec_")]
        assert spec_keys  # hierarchical emits subva outcomes

    def test_tracer_rides_switch_simulation(self):
        collector = TraceCollector()
        sim = SwitchSimulation(
            HierarchicalCrossbarRouter(_config()), load=0.3, seed=11,
            tracer=collector,
        )
        result = sim.run(SweepSettings(
            warmup=50, measure=100, drain=2000,
        ))
        assert collector.cycles > 0
        assert collector.completed > 0
        assert result.extra["stats.trace.records"] == collector.completed


# ----------------------------------------------------------------------
# Lifecycle invariants (property-based, all organizations)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("router_cls", ALL_ROUTERS)
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(packets=packets_strategy)
def test_lifecycle_invariants(router_cls, packets):
    router = router_cls(_config())
    collector = TraceCollector(capacity=4096).attach(router)
    delivered = _drive(router, packets)

    # Inject/eject exactly once: every flit opened one record, every
    # record completed, no duplicates or double ejects.
    total_flits = sum(size for _, _, size, _ in packets)
    assert len(delivered) == total_flits
    assert collector.opened == total_flits
    assert collector.completed == total_flits
    assert collector.evicted == 0
    assert collector.reopened == 0
    assert collector.double_ejects == 0

    declared = set(router.TRACE_STAGES)
    for rec in collector.records():
        # Stage names come from the declared pipeline.
        names = [s for s, _, _ in rec.stages]
        assert set(names) <= declared
        # First observation is route computation at the inject cycle.
        assert names[0] == "RC"
        assert rec.stages[0][1] == rec.injected_at
        # Timestamps are monotone in emission order and bracketed by
        # the inject/eject cycles.
        cycles = [c for _, c, _ in rec.stages]
        assert all(a <= b for a, b in zip(cycles, cycles[1:]))
        assert rec.injected_at <= cycles[0]
        assert cycles[-1] <= rec.ejected_at
        assert rec.latency == rec.ejected_at - rec.injected_at
        # Spans partition [first stage, eject] without overlap.
        spans = stage_spans(rec)
        assert [s[0] for s in spans] == list(dict.fromkeys(names))
        for (_, start, end, _), (_, nstart, _, _) in zip(spans, spans[1:]):
            assert start <= end == nstart
        assert spans[-1][2] == rec.ejected_at


@pytest.mark.parametrize("router_cls", ALL_ROUTERS)
def test_declared_stages_cover_head_flit_path(router_cls):
    """A contention-free head flit visits every declared stage."""
    router = router_cls(_config())
    collector = TraceCollector().attach(router)
    _drive(router, [(0, 5, 1, 0)])
    (rec,) = collector.records()
    assert [s[0] for s in stage_spans(rec)] == list(router.TRACE_STAGES)


# ----------------------------------------------------------------------
# Differential: measured spans vs the static pipeline tables
# ----------------------------------------------------------------------


@pytest.mark.parametrize("arch,router_cls,extra", ARCH_CASES)
def test_contention_free_spans_match_measured_pipeline(
    arch, router_cls, extra
):
    config = _config(**extra)
    router = router_cls(config)
    collector = TraceCollector().attach(router)
    _drive(router, [(0, 5, 1, 0)])
    (rec,) = collector.records()

    expected = measured_pipeline(config, arch)
    spans = stage_spans(rec)
    assert [s[0] for s in spans] == [st.name for st in expected]
    assert [end - start for _, start, end, _ in spans] == [
        st.cycles for st in expected
    ]
    assert rec.latency == head_flit_latency(expected)


@pytest.mark.parametrize(
    "arch,router_cls,extra",
    [case for case in ARCH_CASES if case[0] in ("baseline", "cva", "ova")],
)
def test_measured_latency_matches_paper_pipeline(arch, router_cls, extra):
    """For the paper's figure pipelines the trace total is the figure
    total (default ova_extra_latency folds into the SA span)."""
    config = _config(**extra)
    router = router_cls(config)
    collector = TraceCollector().attach(router)
    _drive(router, [(0, 5, 1, 0)])
    (rec,) = collector.records()
    assert rec.latency == head_flit_latency(pipeline_for(config, arch))


def test_measured_pipeline_rejects_unknown_architecture():
    with pytest.raises(ValueError, match="hierarchical"):
        measured_pipeline(_config(), "mesh")


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------


def _traced_run(seed=7, load=0.3):
    reset_packet_ids()  # packet ids are part of the exported bytes
    collector = TraceCollector()
    sim = SwitchSimulation(
        HierarchicalCrossbarRouter(_config()), load=load, seed=seed,
        tracer=collector,
    )
    sim.run(SweepSettings(
        warmup=50, measure=150, drain=2000,
    ))
    return collector


class TestChromeExport:
    def test_event_stream_is_valid(self):
        collector = _traced_run()
        events = chrome_trace_events(collector)
        assert events, "no events for a loaded run"
        metadata = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len(metadata) + len(spans) == len(events)
        # Metadata first: process and per-track thread names.
        assert events[: len(metadata)] == metadata
        assert any(e["name"] == "process_name" for e in metadata)
        for e in spans:
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(e)
            assert e["args"]["packet"] >= 0

    def test_json_round_trip(self, tmp_path):
        collector = _traced_run()
        path = tmp_path / "trace.json"
        count = dump_chrome_trace(collector, path)
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == count
        assert doc["displayTimeUnit"] == "ms"

    def test_empty_collector_exports_no_spans(self):
        events = chrome_trace_events(TraceCollector())
        assert [e for e in events if e["ph"] == "X"] == []
        doc = json.loads(chrome_trace_json(TraceCollector()))
        assert [e for e in doc["traceEvents"] if e["ph"] == "X"] == []

    def test_same_seed_byte_identical(self):
        a = chrome_trace_json(_traced_run(seed=21))
        b = chrome_trace_json(_traced_run(seed=21))
        assert a == b

    def test_different_seed_differs(self):
        a = chrome_trace_json(_traced_run(seed=21))
        b = chrome_trace_json(_traced_run(seed=22))
        assert a != b


# ----------------------------------------------------------------------
# Stage breakdown report
# ----------------------------------------------------------------------


class TestStageBreakdown:
    def test_summaries_per_stage(self):
        collector = _traced_run()
        summaries = stage_breakdown(collector)
        names = [s.stage for s in summaries]
        assert names == list(HierarchicalCrossbarRouter.TRACE_STAGES)
        for s in summaries:
            assert s.count > 0
            assert s.min <= s.mean <= s.max

    def test_format_includes_zero_load_column(self):
        collector = _traced_run()
        text = format_stage_breakdown(
            collector, config=_config(), architecture="hierarchical",
        )
        assert "zero-load" in text
        assert "total" in text
        for stage in HierarchicalCrossbarRouter.TRACE_STAGES:
            assert stage in text

    def test_format_without_reference_pipeline(self):
        collector = _traced_run()
        text = format_stage_breakdown(collector)
        assert "zero-load" not in text
        assert "RC" in text

    def test_empty_collector_formats(self):
        text = format_stage_breakdown(TraceCollector())
        assert "stage" in text
