"""Behavioral tests for the low-radix centralized baseline router."""

from repro.core.config import RouterConfig
from repro.core.flit import make_packet
from repro.harness.experiment import SwitchSimulation, SweepSettings
from repro.routers.baseline import BaselineRouter

CFG = RouterConfig(radix=8, num_vcs=2, subswitch_size=4, local_group_size=4)


def _drain(router, max_cycles=500):
    out = []
    for _ in range(max_cycles):
        router.step()
        out.extend(router.drain_ejected())
        if router.idle():
            break
    return out


class TestPipelineTiming:
    def test_zero_load_latency(self):
        """Head flits wait RC+VA (2 cycles), then ST (flit_cycles)."""
        router = BaselineRouter(CFG)
        (flit,) = make_packet(dest=3, size=1, src=0)
        router.accept(0, flit)
        out = _drain(router)
        (f, cycle) = out[0]
        # RC/VA eligibility delay = route_latency + 1 = 2, then the
        # grant cycle plus flit_cycles of traversal.
        assert cycle == 2 + CFG.flit_cycles

    def test_body_flits_stream_back_to_back(self):
        """After the head, flits flow at one per flit_cycles."""
        router = BaselineRouter(CFG)
        flits = make_packet(dest=3, size=3, src=0)
        for f in flits:
            router.accept(0, f)
        out = _drain(router)
        cycles = [c for _, c in out]
        assert cycles[1] - cycles[0] == CFG.flit_cycles
        assert cycles[2] - cycles[1] == CFG.flit_cycles


class TestOutputConflict:
    def test_two_inputs_one_output_serialized(self):
        router = BaselineRouter(CFG)
        a = make_packet(dest=5, size=1, src=0)[0]
        b = make_packet(dest=5, size=1, src=1)[0]
        router.accept(0, a)
        router.accept(1, b)
        out = _drain(router)
        assert len(out) == 2
        c0, c1 = out[0][1], out[1][1]
        assert c1 - c0 >= CFG.flit_cycles

    def test_two_inputs_two_outputs_parallel(self):
        router = BaselineRouter(CFG)
        a = make_packet(dest=5, size=1, src=0)[0]
        b = make_packet(dest=6, size=1, src=1)[0]
        router.accept(0, a)
        router.accept(1, b)
        out = _drain(router)
        assert out[0][1] == out[1][1]  # same cycle: no conflict


class TestVcAllocation:
    def test_packets_get_distinct_output_vcs(self):
        """Two concurrent packets to one output use different VCs."""
        router = BaselineRouter(CFG)
        pa = make_packet(dest=2, size=4, src=0)
        pb = make_packet(dest=2, size=4, src=1)
        for f in pa:
            f.vc = 0
            router.accept(0, f)
        for f in pb:
            f.vc = 0
            router.accept(1, f)
        out = _drain(router)
        vcs = {}
        for f, _ in out:
            vcs.setdefault(f.packet_id, set()).add(f.out_vc)
        va, vb = vcs[pa[0].packet_id], vcs[pb[0].packet_id]
        assert len(va) == 1 and len(vb) == 1
        assert va != vb

    def test_vc_exhaustion_blocks_third_packet(self):
        """With 2 VCs, a third long packet to the same output waits for
        a VC to free."""
        cfg = CFG.with_(num_vcs=2, input_buffer_depth=16)
        router = BaselineRouter(cfg)
        packets = [make_packet(dest=2, size=6, src=i) for i in range(3)]
        for i, pkt in enumerate(packets):
            for f in pkt:
                f.vc = 0
                router.accept(i, f)
        out = _drain(router, max_cycles=2000)
        assert len(out) == 18
        # The third packet's head must depart only after one of the
        # first two tails frees its VC.
        head_cycles = sorted(c for f, c in out if f.is_head)
        tail_cycles = sorted(c for f, c in out if f.is_tail)
        assert head_cycles[2] > min(tail_cycles)


class TestSaturation:
    def test_hol_limits_throughput(self):
        """Section 4.3 / [18]: the input-queued baseline saturates well
        below full capacity but above 50%."""
        cfg = RouterConfig(radix=16, num_vcs=4, subswitch_size=4,
                           local_group_size=4)
        sim = SwitchSimulation(BaselineRouter(cfg), load=1.0)
        r = sim.run(SweepSettings(warmup=400, measure=800, drain=50))
        assert 0.5 < r.throughput < 0.9
