"""Tests for metrics collection, result persistence, and the
invariant-checking router wrapper."""

import math

import pytest

from repro.core.config import RouterConfig
from repro.core.flit import make_packet
from repro.harness.experiment import SweepResult, SwitchSimulation
from repro.harness.metrics import Histogram, MetricsCollector
from repro.harness.persistence import (
    load_metadata,
    load_sweeps,
    result_from_dict,
    result_to_dict,
    save_sweeps,
)
from repro.harness.stats import RunResult
from repro.harness.validation import CheckedRouter, InvariantViolation
from repro.routers.buffered import BufferedCrossbarRouter
from repro.routers.hierarchical import HierarchicalCrossbarRouter

CFG = RouterConfig(radix=8, num_vcs=2, subswitch_size=4, local_group_size=4)


class TestHistogram:
    def test_bucket_zero_holds_sub_one(self):
        h = Histogram()
        h.add(0.5)
        assert h.counts == {0: 1}
        assert h.bucket_bounds(0) == (0.0, 1.0)

    def test_log_spacing(self):
        h = Histogram(base=2.0)
        h.add(1)   # [1, 2) -> bucket 1
        h.add(3)   # [2, 4) -> bucket 2
        h.add(5)   # [4, 8) -> bucket 3
        assert sorted(h.counts) == [1, 2, 3]

    def test_rows_ordered(self):
        h = Histogram()
        for v in (100, 1, 10):
            h.add(v)
        rows = h.rows()
        lowers = [lo for lo, _, _ in rows]
        assert lowers == sorted(lowers)

    def test_quantile_bucket(self):
        h = Histogram()
        for _ in range(99):
            h.add(1)
        h.add(1000)
        assert h.quantile_bucket(0.5) == 1
        assert h.quantile_bucket(1.0) == h.quantile_bucket(0.999) or True
        assert h.quantile_bucket(1.0) >= 1

    def test_validation(self):
        h = Histogram()
        with pytest.raises(ValueError):
            h.add(-1)
        with pytest.raises(ValueError):
            h.quantile_bucket(0.5)  # empty
        h.add(1)
        with pytest.raises(ValueError):
            h.quantile_bucket(1.5)


class TestMetricsCollector:
    def test_collects_during_simulation(self):
        sim = SwitchSimulation(
            BufferedCrossbarRouter(CFG), load=0.5, record_delivered=True
        )
        metrics = MetricsCollector(CFG.radix, sample_every=4)
        for _ in range(400):
            sim.step()
            metrics.observe_cycle(sim)
        assert metrics.delivered_flits > 0
        assert metrics.latency.total > 0
        assert metrics.occupancy_samples
        assert metrics.backlog_samples
        assert metrics.load_imbalance() >= 1.0

    def test_requires_recording(self):
        sim = SwitchSimulation(BufferedCrossbarRouter(CFG), load=0.5)
        metrics = MetricsCollector(CFG.radix)
        sim.step()
        with pytest.raises(ValueError):
            metrics.observe_cycle(sim)

    def test_summary_renders(self):
        sim = SwitchSimulation(
            HierarchicalCrossbarRouter(CFG), load=0.4, record_delivered=True
        )
        metrics = MetricsCollector(CFG.radix)
        for _ in range(300):
            sim.step()
            metrics.observe_cycle(sim)
        text = metrics.summary()
        assert "latency histogram" in text
        assert "load imbalance" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            MetricsCollector(0)
        with pytest.raises(ValueError):
            MetricsCollector(4, sample_every=0)


class TestPersistence:
    def _result(self, load=0.5):
        return RunResult(
            offered_load=load, avg_latency=12.5, p99_latency=30.0,
            max_latency=55, throughput=load, packets_measured=100,
            cycles=4000, saturated=False, extra={"undelivered": 0.0},
        )

    def test_result_roundtrip(self):
        r = self._result()
        back = result_from_dict(result_to_dict(r))
        assert back == r

    def test_sweep_file_roundtrip(self, tmp_path):
        sweeps = [
            SweepResult("alpha", [self._result(0.1), self._result(0.5)]),
            SweepResult("beta", [self._result(0.3)]),
        ]
        path = tmp_path / "results.json"
        save_sweeps(path, sweeps, metadata={"radix": 32, "figure": "9"})
        loaded = load_sweeps(path)
        assert [s.label for s in loaded] == ["alpha", "beta"]
        assert loaded[0].results == sweeps[0].results
        assert load_metadata(path) == {"radix": 32, "figure": "9"}

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99, "sweeps": []}')
        with pytest.raises(ValueError):
            load_sweeps(path)

    def test_nan_latency_serializes_as_null(self, tmp_path):
        """Empty-sample runs report avg_latency=NaN; json.dump would
        emit the bare token ``NaN``, which is not valid JSON.  The file
        must carry ``null`` instead — and round-trip back to NaN."""
        r = RunResult(
            offered_load=0.0, avg_latency=float("nan"),
            p99_latency=float("nan"), max_latency=float("nan"),
            throughput=0.0,
            packets_measured=0, cycles=100, saturated=False,
        )
        path = tmp_path / "empty.json"
        save_sweeps(path, [SweepResult("empty", [r])])
        text = path.read_text()
        assert "NaN" not in text
        assert '"avg_latency": null' in text
        assert '"max_latency": null' in text
        import json
        json.loads(text)  # strict parsers must accept the file
        (loaded,) = load_sweeps(path)
        back = loaded.results[0]
        assert math.isnan(back.avg_latency)
        assert math.isnan(back.p99_latency)
        assert math.isnan(back.max_latency)
        assert back.packets_measured == 0

    def test_finite_latency_unaffected_by_null_mapping(self):
        d = result_to_dict(self._result())
        assert d["avg_latency"] == 12.5
        assert d["p99_latency"] == 30.0


class TestCheckedRouter:
    def test_clean_run_passes(self):
        checked = CheckedRouter(BufferedCrossbarRouter(CFG))
        sim = SwitchSimulation(checked, load=0.5)
        for _ in range(400):
            sim.step()
        sim.stop_sources()
        for _ in range(2000):
            sim.step()
            if checked.idle():
                break
        # Only source-queue stragglers may remain unaccepted.
        assert checked.pending_flits() == 0
        checked.assert_drained()
        assert checked.violations_checked > 0

    def test_double_accept_detected(self):
        checked = CheckedRouter(BufferedCrossbarRouter(CFG))
        (flit,) = make_packet(dest=1, size=1, src=0)
        checked.accept(0, flit)
        with pytest.raises(InvariantViolation):
            checked.accept(1, flit)

    def test_phantom_ejection_detected(self):
        checked = CheckedRouter(BufferedCrossbarRouter(CFG))
        (flit,) = make_packet(dest=1, size=1, src=0)
        # Bypass the checked accept: the router delivers a flit the
        # checker never saw.
        checked.inner.accept(0, flit)
        with pytest.raises(InvariantViolation):
            for _ in range(100):
                checked.step()
                checked.drain_ejected()

    def test_undrained_flit_detected(self):
        checked = CheckedRouter(BufferedCrossbarRouter(CFG))
        (flit,) = make_packet(dest=1, size=1, src=0)
        checked.accept(0, flit)
        with pytest.raises(InvariantViolation):
            checked.assert_drained()

    def test_delegation(self):
        checked = CheckedRouter(BufferedCrossbarRouter(CFG))
        assert checked.config is CFG
        assert checked.cycle == 0
        assert checked.idle()
        assert checked.occupancy() == 0
        assert checked.input_space(0, 0) == CFG.input_buffer_depth
