"""Tests for per-input traffic sources."""

import pytest

from repro.traffic.injection import Bernoulli
from repro.traffic.patterns import UniformRandom
from repro.traffic.source import TrafficSource


def _source(rate=1.0, packet_size=1, seed=0, input_id=0, k=8):
    return TrafficSource(
        input_id, UniformRandom(k), Bernoulli(rate), packet_size, seed
    )


class TestTrafficSource:
    def test_generate_at_rate_one(self):
        src = _source(rate=1.0)
        assert src.generate(now=0, measured=False) is not None
        assert src.backlog() == 1

    def test_generate_at_rate_zero(self):
        src = _source(rate=0.0)
        assert src.generate(0, False) is None
        assert src.backlog() == 0

    def test_packet_size_flits(self):
        src = _source(rate=1.0, packet_size=5)
        src.generate(0, False)
        assert src.backlog() == 5
        flits = [src.pop() for _ in range(5)]
        assert flits[0].is_head and flits[-1].is_tail
        assert len({f.packet_id for f in flits}) == 1

    def test_measured_flag_propagates(self):
        src = _source(rate=1.0)
        src.generate(0, measured=True)
        assert src.pop().measured

    def test_created_at_recorded(self):
        src = _source(rate=1.0)
        src.generate(42, False)
        assert src.pop().created_at == 42

    def test_src_recorded(self):
        src = _source(rate=1.0, input_id=5)
        src.generate(0, False)
        assert src.pop().src == 5

    def test_head_is_nondestructive(self):
        src = _source(rate=1.0)
        src.generate(0, False)
        f = src.head()
        assert src.head() is f
        assert src.pop() is f
        assert src.head() is None

    def test_counters(self):
        src = _source(rate=1.0, packet_size=3)
        for now in range(4):
            src.generate(now, False)
        assert src.packets_generated == 4
        assert src.flits_generated == 12

    def test_deterministic_across_instances(self):
        a = _source(rate=0.5, seed=7)
        b = _source(rate=0.5, seed=7)
        seq_a = [a.generate(t, False) is not None for t in range(100)]
        seq_b = [b.generate(t, False) is not None for t in range(100)]
        assert seq_a == seq_b

    def test_different_inputs_get_different_streams(self):
        a = TrafficSource(0, UniformRandom(8), Bernoulli(0.5), 1, seed=7)
        b = TrafficSource(1, UniformRandom(8), Bernoulli(0.5), 1, seed=7)
        seq_a = [a.generate(t, False) is not None for t in range(200)]
        seq_b = [b.generate(t, False) is not None for t in range(200)]
        assert seq_a != seq_b

    def test_invalid_packet_size(self):
        with pytest.raises(ValueError):
            _source(packet_size=0)
