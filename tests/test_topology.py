"""Tests for the folded-Clos topology builder."""

import random  # lint: disable=R001 (tests build local seeded streams)

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.topology import FoldedClos


class TestConstruction:
    def test_host_and_switch_counts(self):
        t = FoldedClos(radix=16, levels=2)
        assert t.m == 8
        assert t.num_hosts == 64
        assert t.switches_per_level == 8
        assert t.num_switches == 16

    def test_unfolded_stage_count(self):
        """The paper's terminology: 3 stages for two levels, 5 for three."""
        assert FoldedClos(64, 2).stages_unfolded == 3
        assert FoldedClos(16, 3).stages_unfolded == 5

    def test_top_level_uses_half_ports(self):
        t = FoldedClos(8, 2)
        assert t.ports_used((1, 0, 0)) == 4
        assert t.ports_used((0, 0, 0)) == 8

    def test_invalid_radix(self):
        with pytest.raises(ValueError):
            FoldedClos(7, 2)
        with pytest.raises(ValueError):
            FoldedClos(2, 2)

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            FoldedClos(8, 0)

    def test_switch_ids_enumeration(self):
        t = FoldedClos(8, 2)
        ids = t.switch_ids()
        assert len(ids) == t.num_switches
        assert len(set(ids)) == len(ids)


class TestWiring:
    @pytest.mark.parametrize("radix,levels", [(4, 2), (8, 2), (8, 3), (16, 2)])
    def test_up_down_reciprocity(self, radix, levels):
        """Following an up link and then the corresponding down link
        must return to the origin."""
        t = FoldedClos(radix, levels)
        for sid in t.switch_ids():
            if sid[0] == levels - 1:
                continue
            for up in range(t.m, 2 * t.m):
                ref = t.up_neighbor(sid, up)
                assert ref.switch is not None
                back = t.down_neighbor(ref.switch, ref.port)
                assert back.switch == sid
                assert back.port == up

    def test_leaf_down_ports_reach_hosts(self):
        t = FoldedClos(8, 2)
        hosts = set()
        for sub in range(t.switches_per_level):
            for port in range(t.m):
                ref = t.down_neighbor((0, sub, 0), port)
                assert ref.switch is None
                hosts.add(ref.host)
        assert hosts == set(range(t.num_hosts))

    def test_host_attachment_inverse(self):
        t = FoldedClos(8, 3)
        for host in range(t.num_hosts):
            ref = t.host_attachment(host)
            back = t.down_neighbor(ref.switch, ref.port)
            assert back.host == host

    def test_top_has_no_up_ports(self):
        t = FoldedClos(8, 2)
        with pytest.raises(ValueError):
            t.up_neighbor((1, 0, 0), t.m)

    def test_port_range_checks(self):
        t = FoldedClos(8, 2)
        with pytest.raises(ValueError):
            t.down_neighbor((0, 0, 0), t.m)
        with pytest.raises(ValueError):
            t.up_neighbor((0, 0, 0), 0)

    def test_host_range_check(self):
        t = FoldedClos(8, 2)
        with pytest.raises(ValueError):
            t.host_attachment(t.num_hosts)


class TestRouting:
    @pytest.mark.parametrize("radix,levels", [(4, 2), (8, 2), (8, 3), (4, 4)])
    def test_routes_deliver(self, radix, levels):
        t = FoldedClos(radix, levels)
        rng = random.Random(0)
        for _ in range(300):
            s = rng.randrange(t.num_hosts)
            d = rng.randrange(t.num_hosts)
            ports = t.route(s, d, rng)
            switch = t.host_attachment(s).switch
            for i, p in enumerate(ports):
                ref = t.neighbor(switch, p)
                if i == len(ports) - 1:
                    assert ref.switch is None and ref.host == d
                else:
                    switch = ref.switch

    def test_route_length_matches_hop_count(self):
        t = FoldedClos(8, 3)
        rng = random.Random(1)
        for _ in range(200):
            s = rng.randrange(t.num_hosts)
            d = rng.randrange(t.num_hosts)
            assert len(t.route(s, d, rng)) == t.hop_count(s, d)

    def test_same_leaf_single_hop(self):
        t = FoldedClos(8, 2)
        rng = random.Random(0)
        assert t.hop_count(0, 1) == 1
        assert len(t.route(0, 1, rng)) == 1

    def test_cross_network_max_hops(self):
        t = FoldedClos(8, 3)
        assert t.hop_count(0, t.num_hosts - 1) == 2 * (t.levels - 1) + 1

    def test_high_radix_fewer_hops(self):
        """The point of Figure 19: same host count, fewer hops."""
        high = FoldedClos(16, 2)  # 64 hosts, 3 stages
        low = FoldedClos(8, 3)  # 64 hosts, 5 stages
        assert high.num_hosts == low.num_hosts == 64
        assert high.average_hop_count() < low.average_hop_count()

    def test_oblivious_ascent_randomizes_middle(self):
        """Different random draws must use different up ports."""
        t = FoldedClos(8, 2)
        rng = random.Random(2)
        s, d = 0, t.num_hosts - 1
        first_ports = {tuple(t.route(s, d, rng))[0] for _ in range(100)}
        assert len(first_ports) > 1

    def test_average_hop_count_bounds(self):
        t = FoldedClos(8, 2)
        avg = t.average_hop_count()
        assert 1.0 <= avg <= 3.0

    @settings(max_examples=30)
    @given(st.integers(0, 2**31 - 1))
    def test_random_routes_always_deliver(self, seed):
        t = FoldedClos(8, 3)
        rng = random.Random(seed)
        s = rng.randrange(t.num_hosts)
        d = rng.randrange(t.num_hosts)
        ports = t.route(s, d, rng)
        switch = t.host_attachment(s).switch
        for i, p in enumerate(ports):
            ref = t.neighbor(switch, p)
            switch = ref.switch
        assert switch is None
