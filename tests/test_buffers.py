"""Tests for FlitQueue and VcBufferBank, including FIFO properties."""

import pytest
from hypothesis import given, strategies as st

from repro.core.buffers import FlitQueue, VcBufferBank
from repro.core.flit import make_packet


def _flit(i=0):
    return make_packet(dest=0, size=1, packet_id=i)[0]


class TestFlitQueue:
    def test_starts_empty(self):
        q = FlitQueue(4)
        assert len(q) == 0
        assert not q
        assert q.head() is None
        assert q.free_slots == 4
        assert not q.full

    def test_push_pop_fifo(self):
        q = FlitQueue(4)
        flits = [_flit(i) for i in range(3)]
        for f in flits:
            q.push(f)
        assert q.head() is flits[0]
        assert [q.pop() for _ in range(3)] == flits

    def test_overflow_raises(self):
        q = FlitQueue(2)
        q.push(_flit())
        q.push(_flit())
        assert q.full
        with pytest.raises(OverflowError):
            q.push(_flit())

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            FlitQueue(1).pop()

    def test_unbounded_queue(self):
        q = FlitQueue(None)
        for i in range(1000):
            q.push(_flit(i))
        assert len(q) == 1000
        assert not q.full
        assert q.free_slots > 1000

    def test_clear_returns_contents(self):
        q = FlitQueue(4)
        flits = [_flit(i) for i in range(3)]
        for f in flits:
            q.push(f)
        assert q.clear() == flits
        assert len(q) == 0

    def test_invalid_maxlen(self):
        with pytest.raises(ValueError):
            FlitQueue(0)

    def test_iteration_order(self):
        q = FlitQueue(8)
        flits = [_flit(i) for i in range(5)]
        for f in flits:
            q.push(f)
        assert list(q) == flits

    @given(st.lists(st.integers(0, 100), max_size=50))
    def test_fifo_property(self, ids):
        """Whatever goes in comes out in the same order."""
        q = FlitQueue(None)
        flits = [_flit(i) for i in ids]
        for f in flits:
            q.push(f)
        out = [q.pop() for _ in range(len(flits))]
        assert [f.packet_id for f in out] == ids

    @given(st.lists(st.sampled_from(["push", "pop"]), max_size=60))
    def test_occupancy_never_exceeds_capacity(self, ops):
        q = FlitQueue(5)
        for op in ops:
            if op == "push" and not q.full:
                q.push(_flit())
            elif op == "pop" and q:
                q.pop()
            assert 0 <= len(q) <= 5
            assert q.free_slots == 5 - len(q)


class TestVcBufferBank:
    def test_shape(self):
        bank = VcBufferBank(4, 8)
        assert bank.num_vcs == 4
        assert all(bank[vc].free_slots == 8 for vc in range(4))

    def test_occupancy_sums_vcs(self):
        bank = VcBufferBank(3, 4)
        bank[0].push(_flit())
        bank[2].push(_flit())
        bank[2].push(_flit())
        assert bank.occupancy() == 3
        assert len(bank) == 3

    def test_heads(self):
        bank = VcBufferBank(2, 4)
        f = _flit(9)
        bank[1].push(f)
        assert bank.heads() == [None, f]

    def test_nonempty_vcs(self):
        bank = VcBufferBank(4, 4)
        bank[1].push(_flit())
        bank[3].push(_flit())
        assert bank.nonempty_vcs() == [1, 3]

    def test_invalid_num_vcs(self):
        with pytest.raises(ValueError):
            VcBufferBank(0, 4)
