"""Tests for the ASCII plotting helpers."""

import math

import pytest

from repro.harness.experiment import SweepResult
from repro.harness.plot import ascii_plot, plot_sweeps
from repro.harness.stats import RunResult


def _result(load, lat, saturated=False):
    return RunResult(
        offered_load=load, avg_latency=lat, p99_latency=lat, max_latency=0,
        throughput=load, packets_measured=10, cycles=100, saturated=saturated,
    )


class TestAsciiPlot:
    def test_basic_plot_contains_markers_and_legend(self):
        text = ascii_plot(
            [("a", [0, 1, 2], [1, 2, 3]), ("b", [0, 1, 2], [3, 2, 1])]
        )
        assert "o" in text
        assert "x" in text
        assert "o a" in text
        assert "x b" in text

    def test_axis_ticks(self):
        text = ascii_plot([("s", [0.0, 1.0], [0.0, 10.0])], x_label="load")
        assert "10" in text
        assert "0" in text
        assert "x: load" in text

    def test_y_clipping(self):
        text = ascii_plot([("s", [0, 1], [1, 1e9])], y_max=10.0)
        # The huge point is clipped to the top row instead of exploding
        # the scale.
        assert "1e+09" not in text
        assert "10" in text

    def test_title(self):
        text = ascii_plot([("s", [0], [0])], title="My Plot")
        assert text.splitlines()[0] == "My Plot"

    def test_nan_points_skipped(self):
        text = ascii_plot([("s", [0, 1], [float("nan"), 5.0])])
        assert "(no data)" not in text

    def test_empty_series(self):
        assert ascii_plot([("s", [], [])]) == "(no data)"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_plot([("s", [1, 2], [1])])

    def test_too_small(self):
        with pytest.raises(ValueError):
            ascii_plot([("s", [0], [0])], width=5)

    def test_constant_series_does_not_crash(self):
        text = ascii_plot([("s", [1, 1, 1], [2, 2, 2])])
        assert "o" in text

    def test_dimensions(self):
        text = ascii_plot([("s", [0, 1], [0, 1])], width=40, height=10)
        body_lines = [l for l in text.splitlines() if "|" in l]
        assert len(body_lines) == 10


class TestPlotSweeps:
    def test_plot_from_sweeps(self):
        sweep = SweepResult(
            "alpha", [_result(0.1, 10), _result(0.5, 20), _result(0.9, 500,
                                                                  True)]
        )
        text = plot_sweeps([sweep])
        assert "o alpha" in text
        assert "offered load" in text

    def test_saturated_points_clipped(self):
        sweep = SweepResult(
            "a", [_result(0.1, 10), _result(0.9, 100000, True)]
        )
        text = plot_sweeps([sweep])
        # y_max defaults to 3x the largest unsaturated latency (30).
        assert "1e+05" not in text
