"""Tests for the multi-stage arbiter and the pipeline diagrams."""

import pytest
from hypothesis import given, strategies as st

from repro.core.arbiter import HierarchicalArbiter, MultiStageArbiter
from repro.core.config import RouterConfig
from repro.core.pipeline_diagram import (
    baseline_pipeline,
    compare,
    cva_pipeline,
    head_flit_latency,
    ova_pipeline,
    pipeline_for,
    render,
)
from repro.routers.baseline import BaselineRouter
from repro.routers.distributed import DistributedRouter

CFG = RouterConfig(radix=8, num_vcs=2, subswitch_size=4, local_group_size=4)


class TestMultiStageArbiter:
    def test_two_stage_matches_hierarchical(self):
        """With one group size, the tree degenerates to Figure 6's
        two-stage arbiter and makes identical decisions."""
        multi = MultiStageArbiter(16, [4])
        hier = HierarchicalArbiter(16, 4)
        for step in range(50):
            reqs = [(i + step) % 3 == 0 for i in range(16)]
            assert multi.arbitrate(reqs) == hier.arbitrate(reqs)

    def test_stage_count(self):
        assert MultiStageArbiter(64, [8]).num_stages == 2
        assert MultiStageArbiter(512, [8, 8]).num_stages == 3
        assert MultiStageArbiter(4096, [8, 8, 8]).num_stages == 4

    def test_single_request_wins_any_depth(self):
        arb = MultiStageArbiter(512, [8, 8])
        reqs = [False] * 512
        reqs[300] = True
        assert arb.arbitrate(reqs) == 300

    def test_no_requests(self):
        assert MultiStageArbiter(64, [8]).arbitrate([False] * 64) is None

    def test_fairness_under_full_load(self):
        arb = MultiStageArbiter(27, [3, 3])
        wins = [0] * 27
        for _ in range(27 * 20):
            wins[arb.arbitrate([True] * 27)] += 1
        assert max(wins) - min(wins) <= 21  # every line served repeatedly
        assert min(wins) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiStageArbiter(0, [4])
        with pytest.raises(ValueError):
            MultiStageArbiter(8, [])
        with pytest.raises(ValueError):
            MultiStageArbiter(8, [0])
        with pytest.raises(ValueError):
            MultiStageArbiter(8, [4]).arbitrate([True] * 7)

    @given(
        st.integers(2, 100),
        st.lists(st.integers(2, 8), min_size=1, max_size=3),
        st.data(),
    )
    def test_grant_implies_request_property(self, size, groups, data):
        arb = MultiStageArbiter(size, groups)
        reqs = data.draw(st.lists(st.booleans(), min_size=size,
                                  max_size=size))
        winner = arb.arbitrate(reqs)
        if any(reqs):
            assert winner is not None and reqs[winner]
        else:
            assert winner is None


class TestPipelineDiagrams:
    def test_baseline_stage_names(self):
        """The SA grant overlaps the first ST cycle, so the diagram
        lists RC | VA | ST."""
        names = [s.name for s in baseline_pipeline(CFG)]
        assert names == ["RC", "VA", "ST"]

    def test_cva_has_no_va_stage(self):
        """Figure 7(b): CVA folds VA into the switch-allocation cycles."""
        names = [s.name for s in cva_pipeline(CFG)]
        assert "VA" not in names
        assert names[0] == "RC" and names[-1] == "ST"

    def test_ova_serializes_va(self):
        """Figure 7(c): OVA adds a VA stage between SA3 and ST."""
        names = [s.name for s in ova_pipeline(CFG)]
        assert "VA" in names
        assert names.index("VA") == len(names) - 2

    def test_speculative_marking(self):
        stages = cva_pipeline(CFG)
        spec = [s.name for s in stages if s.speculative]
        assert "SA1" in spec
        assert "RC" not in spec and "ST" not in spec

    def test_latency_matches_simulated_router(self):
        """The diagram's head-flit latency equals the measured zero-load
        delivery cycle of the corresponding router model."""
        from repro.core.flit import make_packet

        def zero_load(router):
            (flit,) = make_packet(dest=3, size=1, src=0)
            router.accept(0, flit)
            for _ in range(100):
                router.step()
                out = router.drain_ejected()
                if out:
                    return out[0][1]
            raise AssertionError("flit never delivered")

        assert zero_load(BaselineRouter(CFG)) == head_flit_latency(
            baseline_pipeline(CFG)
        )
        assert zero_load(DistributedRouter(CFG)) == head_flit_latency(
            cva_pipeline(CFG)
        )
        assert zero_load(
            DistributedRouter(CFG.with_(vc_allocator="ova"))
        ) == head_flit_latency(ova_pipeline(CFG))

    def test_render_format(self):
        text = render(baseline_pipeline(CFG), "baseline:")
        assert text.splitlines()[0] == "baseline:"
        assert "| RC |" in text
        assert "ST(4)" in text
        assert "head-flit latency" in text

    def test_compare_renders_all_three(self):
        text = compare(CFG)
        assert "Figure 5(b)" in text
        assert "Figure 7(b)" in text
        assert "Figure 7(c)" in text

    def test_pipeline_for_dispatch(self):
        assert pipeline_for(CFG, "baseline") == baseline_pipeline(CFG)
        with pytest.raises(ValueError):
            pipeline_for(CFG, "wormhole")

    def test_short_sa_budget(self):
        cfg = CFG.with_(sa_latency=2)
        names = [s.name for s in cva_pipeline(cfg)]
        assert names == ["RC", "SA1", "wire", "ST"]

    def test_zero_sa_budget(self):
        """With sa_latency=0 the grant is immediate: no SA stages."""
        cfg = CFG.with_(sa_latency=0)
        names = [s.name for s in cva_pipeline(cfg)]
        assert names == ["RC", "ST"]
