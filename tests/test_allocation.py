"""Tests for the allocation package (OutputArbiterBank, CVA/OVA, tracker)."""

import math

import pytest

from repro.allocation.speculation import SpeculationTracker
from repro.allocation.switch_alloc import OutputArbiterBank
from repro.allocation.vc_alloc import CvaPolicy, OvaPolicy
from repro.core.vcstate import OutputVcState


class TestOutputArbiterBank:
    def test_no_requests(self):
        bank = OutputArbiterBank(4, 8, 4)
        assert bank.grant(0, []) is None

    def test_single_request_granted(self):
        bank = OutputArbiterBank(4, 8, 4)
        assert bank.grant(2, [(5, False)]) == 5

    def test_independent_outputs(self):
        bank = OutputArbiterBank(2, 4, 2)
        assert bank.grant(0, [(1, False)]) == 1
        assert bank.grant(1, [(1, False)]) == 1

    def test_round_robin_across_grants(self):
        bank = OutputArbiterBank(1, 4, 4)
        reqs = [(i, False) for i in range(4)]
        winners = [bank.grant(0, reqs) for _ in range(8)]
        assert sorted(set(winners)) == [0, 1, 2, 3]

    def test_prioritized_nonspec_first(self):
        bank = OutputArbiterBank(1, 4, 4, prioritized=True)
        winner = bank.grant(0, [(0, True), (3, False), (1, True)])
        assert winner == 3

    def test_prioritized_spec_fallback(self):
        bank = OutputArbiterBank(1, 4, 4, prioritized=True)
        winner = bank.grant(0, [(2, True)])
        assert winner == 2


class TestCvaPolicy:
    def test_free_vc_admissible(self):
        state = OutputVcState(2)
        assert CvaPolicy().admissible(state, 0, packet_id=1)

    def test_busy_vc_not_admissible(self):
        state = OutputVcState(2)
        state.allocate(0, packet_id=9)
        assert not CvaPolicy().admissible(state, 0, packet_id=1)

    def test_own_vc_admissible(self):
        state = OutputVcState(2)
        state.allocate(0, packet_id=1)
        assert CvaPolicy().admissible(state, 0, packet_id=1)

    def test_no_extra_latency(self):
        assert CvaPolicy.extra_grant_latency == 0


class TestOvaPolicy:
    def test_allocates_free_vc(self):
        policy = OvaPolicy(num_outputs=2, num_vcs=2)
        state = OutputVcState(2)
        vc = policy.allocate(0, state)
        assert vc in (0, 1)

    def test_returns_none_when_exhausted(self):
        policy = OvaPolicy(1, 2)
        state = OutputVcState(2)
        state.allocate(0, 1)
        state.allocate(1, 2)
        assert policy.allocate(0, state) is None

    def test_round_robins_over_vcs(self):
        policy = OvaPolicy(1, 4)
        state = OutputVcState(4)
        first = policy.allocate(0, state)
        second = policy.allocate(0, state)
        assert first != second

    def test_extra_latency_configurable(self):
        assert OvaPolicy(1, 2, extra_latency=2).extra_grant_latency == 2


class TestSpeculationTracker:
    def test_counts(self):
        t = SpeculationTracker()
        t.record_request(True)
        t.record_request(True)
        t.record_request(False)
        t.record_grant(True)
        t.record_grant(False)
        t.record_kill()
        assert t.spec_requests == 2
        assert t.nonspec_requests == 1
        assert t.spec_grants == 1
        assert t.nonspec_grants == 1
        assert t.spec_kills == 1

    def test_success_rate(self):
        t = SpeculationTracker()
        t.record_request(True)
        t.record_request(True)
        t.record_grant(True)
        assert t.spec_success_rate == 0.5

    def test_success_rate_nan_without_requests(self):
        assert math.isnan(SpeculationTracker().spec_success_rate)

    def test_wasted_fraction(self):
        t = SpeculationTracker()
        assert t.wasted_bid_fraction == 0.0
        t.record_request(True)
        t.record_request(False)
        t.record_kill()
        assert t.wasted_bid_fraction == 0.5
