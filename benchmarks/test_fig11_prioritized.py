"""Figure 11: one vs two switch arbiters (prioritized speculation).

Regenerates the four curves of Figure 11 — single and dual arbiters at
1 VC and at 4 VCs — on uniform random traffic with 10-flit packets
under CVA (as in the paper: "our evaluation uses only 10-flit packets
... these simulations use CVA").

Paper claims checked:
* with one VC, prioritizing nonspeculative requests raises saturation
  throughput (the paper reports ~10%) and lowers latency;
* with four VCs the advantage (nearly) disappears — multiple VCs
  already prevent most of the speculative bandwidth loss.
"""

from common import BASE_CONFIG, SAT_SETTINGS, SETTINGS, once, save_table

from repro.harness.experiment import run_load_sweep, saturation_throughput
from repro.harness.report import format_sweeps
from repro.routers.distributed import DistributedRouter

PACKET = 10
LOADS = (0.2, 0.4, 0.6)

V1 = BASE_CONFIG.with_(num_vcs=1, input_buffer_depth=32)
V1P = V1.with_(prioritize_nonspeculative=True)
V4 = BASE_CONFIG.with_(num_vcs=4, input_buffer_depth=32)
V4P = V4.with_(prioritize_nonspeculative=True)


def test_fig11_prioritized_allocation(benchmark):
    def run():
        sweeps = {
            "1VC one-arb": run_load_sweep(
                DistributedRouter, V1, LOADS, label="1VC one-arb",
                packet_size=PACKET, settings=SETTINGS),
            "1VC two-arb": run_load_sweep(
                DistributedRouter, V1P, LOADS, label="1VC two-arb",
                packet_size=PACKET, settings=SETTINGS),
            "4VC one-arb": run_load_sweep(
                DistributedRouter, V4, LOADS, label="4VC one-arb",
                packet_size=PACKET, settings=SETTINGS),
            "4VC two-arb": run_load_sweep(
                DistributedRouter, V4P, LOADS, label="4VC two-arb",
                packet_size=PACKET, settings=SETTINGS),
        }
        sats = {
            name: saturation_throughput(
                DistributedRouter, cfg, packet_size=PACKET,
                settings=SAT_SETTINGS)
            for name, cfg in [("1VC one-arb", V1), ("1VC two-arb", V1P),
                              ("4VC one-arb", V4), ("4VC two-arb", V4P)]
        }
        return sweeps, sats

    sweeps, sats = once(benchmark, run)

    table = format_sweeps(
        [sweeps["1VC one-arb"], sweeps["1VC two-arb"]],
        title="Figure 11(a): 1 VC, one vs two arbiters "
              "(uniform random, 10-flit packets, CVA)",
    )
    table += "\n\n" + format_sweeps(
        [sweeps["4VC one-arb"], sweeps["4VC two-arb"]],
        title="Figure 11(b): 4 VCs, one vs two arbiters",
    )
    table += "\n\nsaturation throughput:\n" + "\n".join(
        f"  {name:14s} {thpt:.3f}" for name, thpt in sats.items()
    )
    save_table("fig11_prioritized", table)

    # (a) Prioritization clearly helps with a single VC.
    gain_1vc = sats["1VC two-arb"] - sats["1VC one-arb"]
    assert gain_1vc > 0.05
    # (b) ... and buys much less with four VCs.
    gain_4vc = sats["4VC two-arb"] - sats["4VC one-arb"]
    assert gain_4vc < gain_1vc
    assert gain_4vc < 0.08
    # "Using multiple VCs gives adequate throughput without the
    # complexity of a prioritized switch allocator."
    assert sats["4VC one-arb"] > sats["1VC one-arb"]
