"""Ablation (Section 4.2): speculative vs non-speculative VC allocation.

The paper's high-radix routers always speculate ("switch allocation
proceeds before virtual channel allocation is complete to reduce
latency").  This ablation quantifies both sides of that trade-off by
comparing CVA speculation against the serialized alternative in which a
head flit first acquires its output VC and only then bids for the
switch:

* speculation buys zero-load latency (the serialized scheme adds a full
  allocation round-trip to every packet);
* speculation costs saturation throughput (failed speculative winners
  waste switch slots);
* the shared-buffer crossbar of Section 5.4 is also compared, since its
  NACK protocol is yet another answer to the same problem.
"""

from common import BASE_CONFIG, SAT_SETTINGS, SETTINGS, once, save_table

from repro.harness.experiment import run_load_sweep, saturation_throughput
from repro.harness.report import format_table
from repro.routers.distributed import DistributedRouter
from repro.routers.shared_buffer import SharedBufferCrossbarRouter

SPEC = BASE_CONFIG
NONSPEC = BASE_CONFIG.with_(speculative=False)


def test_ablation_speculation(benchmark):
    def run():
        spec_sweep = run_load_sweep(
            DistributedRouter, SPEC, [0.1], label="speculative",
            packet_size=4, settings=SETTINGS)
        nonspec_sweep = run_load_sweep(
            DistributedRouter, NONSPEC, [0.1], label="non-speculative",
            packet_size=4, settings=SETTINGS)
        sats = {
            "speculative (CVA)": saturation_throughput(
                DistributedRouter, SPEC, packet_size=4,
                settings=SAT_SETTINGS),
            "non-speculative": saturation_throughput(
                DistributedRouter, NONSPEC, packet_size=4,
                settings=SAT_SETTINGS),
            "shared-buffer NACK": saturation_throughput(
                SharedBufferCrossbarRouter, BASE_CONFIG, packet_size=4,
                settings=SAT_SETTINGS),
        }
        return (
            spec_sweep.zero_load_latency(),
            nonspec_sweep.zero_load_latency(),
            sats,
        )

    spec_zero, nonspec_zero, sats = once(benchmark, run)

    table = format_table(
        ["scheme", "zero-load latency", "saturation throughput"],
        [
            ("speculative (CVA)", f"{spec_zero:.1f}",
             f"{sats['speculative (CVA)']:.3f}"),
            ("non-speculative", f"{nonspec_zero:.1f}",
             f"{sats['non-speculative']:.3f}"),
            ("shared-buffer NACK", "-",
             f"{sats['shared-buffer NACK']:.3f}"),
        ],
        title="Ablation: speculative vs serialized VC allocation "
              "(4-flit packets)",
    )
    save_table("ablation_speculation", table)

    # Speculation reduces zero-load latency.
    assert spec_zero < nonspec_zero
    # All three schemes sustain meaningful throughput.
    for t in sats.values():
        assert t > 0.35
