"""Figure 19: network-level comparison of high- vs low-radix Clos.

Regenerates the latency-load curves of two folded-Clos networks with
the same host count built from high-radix routers (3 unfolded stages)
and low-radix routers (5 unfolded stages), using oblivious routing
(random middle stage) under uniform random traffic — scaled down from
the paper's 4096 nodes per the documented substitution.

Paper claims checked:
* the higher zero-load latency of a single high-radix router is "more
  than offset by the reduced hop count", so the high-radix network has
  lower zero-load latency;
* both networks sustain comparable saturation load.
"""

from common import NETWORK_SCALE, once, save_table

from repro.harness.report import format_table
from repro.network.netsim import ClosNetworkSimulation, NetworkConfig

LOADS = (0.1, 0.3, 0.5, 0.7)

HIGH = NetworkConfig(
    radix=NETWORK_SCALE["high_radix"], levels=NETWORK_SCALE["high_levels"]
)
LOW = NetworkConfig(
    radix=NETWORK_SCALE["low_radix"], levels=NETWORK_SCALE["low_levels"]
)


def test_fig19_network_comparison(benchmark):
    def run():
        curves = {}
        for name, cfg in (("high-radix", HIGH), ("low-radix", LOW)):
            rows = []
            for load in LOADS:
                sim = ClosNetworkSimulation(cfg, load)
                r = sim.run(warmup=800, measure=1000, drain=8000)
                rows.append((load, r.avg_latency, r.throughput, r.saturated))
            curves[name] = rows
        return curves

    curves = once(benchmark, run)

    high_hosts = HIGH.radix // 2
    table_rows = []
    for load in LOADS:
        hi = next(r for r in curves["high-radix"] if r[0] == load)
        lo = next(r for r in curves["low-radix"] if r[0] == load)
        table_rows.append((
            load,
            f"{hi[1]:.1f}" + ("*" if hi[3] else ""),
            f"{lo[1]:.1f}" + ("*" if lo[3] else ""),
        ))
    table = format_table(
        ["load", "high-radix (3-stage)", "low-radix (5-stage)"],
        table_rows,
        title=(
            "Figure 19: Clos network latency vs load "
            f"(high: radix {HIGH.radix} x {2 * HIGH.levels - 1} stages, "
            f"low: radix {LOW.radix} x {2 * LOW.levels - 1} stages)"
        ),
    )
    save_table("fig19_network", table)

    high_zero = curves["high-radix"][0][1]
    low_zero = curves["low-radix"][0][1]
    # Lower zero-load latency for the high-radix network.
    assert high_zero < low_zero
    # Both networks carry the offered load up to at least 70%.
    for name in ("high-radix", "low-radix"):
        for load, lat, thpt, saturated in curves[name]:
            assert thpt > load - 0.1
