"""Figure 1: router pin-bandwidth scaling over time.

Regenerates the scatter data and the fitted trend line, and checks the
paper's observation of roughly an order-of-magnitude bandwidth increase
every five years.
"""

from common import once, save_table

from repro.harness.report import format_table
from repro.models.scaling import (
    ROUTER_SCALING_DATA,
    fit_exponential,
    frontier,
    growth_per_five_years,
    predicted_bandwidth_gbps,
)


def test_fig01_router_scaling(benchmark):
    def run():
        rows = [
            (d.year, d.name, d.bandwidth_gbps,
             "frontier" if d.highest_of_era else "")
            for d in sorted(ROUTER_SCALING_DATA, key=lambda d: d.year)
        ]
        a, b = fit_exponential()
        growth_all = growth_per_five_years()
        growth_frontier = growth_per_five_years(frontier())
        return rows, growth_all, growth_frontier

    rows, growth_all, growth_frontier = once(benchmark, run)

    table = format_table(
        ["year", "router", "bandwidth (Gb/s)", ""],
        rows,
        title="Figure 1: router bandwidth scaling",
    )
    table += (
        f"\n\nfitted growth (all data):      {growth_all:.1f}x / 5 years"
        f"\nfitted growth (frontier line): {growth_frontier:.1f}x / 5 years"
    )
    save_table("fig01_scaling", table)

    # "There has been an order of magnitude increase in the off-chip
    # bandwidth approximately every five years."
    assert 5.0 < growth_all < 15.0
    assert 7.0 < growth_frontier < 13.0
    # The trend extrapolates to ~20 Tb/s by 2010 within a small factor.
    assert 3000 < predicted_bandwidth_gbps(2010, frontier()) < 80000
