"""Figure 14: crosspoint buffer size vs performance, short and long packets.

Regenerates the latency-load behaviour of the fully buffered crossbar
as the per-VC crosspoint buffer depth varies, for 1-flit packets
(Figure 14(a)) and 10-flit packets (Figure 14(b)).

Paper claims checked:
* for short packets, four-flit crosspoint buffers are sufficient —
  deeper buffers add (almost) nothing;
* for long packets, small buffers strangle throughput and larger
  crosspoint buffers are required.
"""

from common import BASE_CONFIG, SAT_SETTINGS, once, save_table

from repro.harness.experiment import saturation_throughput
from repro.harness.report import format_table
from repro.routers.buffered import BufferedCrossbarRouter

SHORT_DEPTHS = (1, 2, 4, 16)
LONG_DEPTHS = (4, 16, 64)


def test_fig14_crosspoint_buffer_size(benchmark):
    def run():
        short = {}
        for depth in SHORT_DEPTHS:
            cfg = BASE_CONFIG.with_(crosspoint_buffer_depth=depth)
            short[depth] = saturation_throughput(
                BufferedCrossbarRouter, cfg, settings=SAT_SETTINGS
            )
        long_ = {}
        for depth in LONG_DEPTHS:
            cfg = BASE_CONFIG.with_(
                crosspoint_buffer_depth=depth, input_buffer_depth=32
            )
            long_[depth] = saturation_throughput(
                BufferedCrossbarRouter, cfg, packet_size=10,
                settings=SAT_SETTINGS,
            )
        return short, long_

    short, long_ = once(benchmark, run)

    table = format_table(
        ["crosspoint depth (flits)", "saturation throughput"],
        [(d, f"{t:.3f}") for d, t in short.items()],
        title="Figure 14(a): 1-flit packets",
    )
    table += "\n\n" + format_table(
        ["crosspoint depth (flits)", "saturation throughput"],
        [(d, f"{t:.3f}") for d, t in long_.items()],
        title="Figure 14(b): 10-flit packets",
    )
    save_table("fig14_buffer_size", table)

    # (a) Four-flit buffers suffice for short packets.
    assert short[4] > 0.9
    assert short[16] - short[4] < 0.05
    # Depth 1 cannot cover the credit round-trip.
    assert short[1] < short[4]
    # (b) Long packets need bigger buffers.
    assert long_[64] > long_[4] + 0.1
    assert long_[16] > long_[4]
