"""Sharded-engine performance: multi-process speedup, checkpoint cost.

Two contracts from the sharding work are perf contracts, not
correctness contracts, so they live here:

* Splitting a radix-32 two-level Clos at high load across 4 worker
  processes must pay >= 1.8x wall-clock over the serial engine (on a
  machine with >= 4 usable cores — the phase-barrier protocol costs
  real pickling work per cycle, so on fewer cores sharding is a net
  slowdown and the speedup floor is unmeasurable, not failed).
* Saving and reloading a mid-run checkpoint of a radix-16 Clos must
  together cost <= 5% of the run it checkpoints.

Both also re-assert byte-identity with the serial engine, so a perf
regression can never be "fixed" by diverging results.
"""

import multiprocessing
import time

import pytest

from repro.core.flit import reset_packet_ids
from repro.harness import load_checkpoint
from repro.network.netsim import NetworkConfig, NetworkSimulation
from repro.network.sharded import ShardedNetworkSimulation

ROUNDS = 3

#: Wall-clock floor for the 4-shard radix-32 Clos run vs. serial.
SPEEDUP_FLOOR = 1.8

#: Max fraction of a run's wall time one save+load cycle may cost.
CKPT_OVERHEAD_CEILING = 0.05

#: Measurement program shared by the speedup comparison (short enough
#: to benchmark, long enough to amortize worker start-up).
WINDOWS = dict(warmup=300, measure=600, drain=3000)


def _best_of(rounds, fn):
    """Minimum wall time over ``rounds`` runs (noise-robust ratio)."""
    times = []
    checksum = None
    for _ in range(rounds):
        start = time.perf_counter()  # lint: disable=R002
        value = fn()
        times.append(time.perf_counter() - start)  # lint: disable=R002
        if checksum is None:
            checksum = value
        else:
            assert value == checksum, "run is not deterministic"
    return min(times), checksum


@pytest.mark.skipif(
    multiprocessing.cpu_count() < 4,
    reason="4-shard speedup needs >= 4 cores to exist at all",
)
def test_perf_sharded_clos_speedup(benchmark):
    """Radix-32 2-level Clos at high load: 4 shards must pay >= 1.8x."""
    config = NetworkConfig(radix=32, levels=2, seed=3)

    def serial():
        reset_packet_ids()
        sim = NetworkSimulation(config, load=0.7)
        return sim.run(**WINDOWS)

    def sharded():
        reset_packet_ids()
        sim = ShardedNetworkSimulation(config, load=0.7, shards=4)
        try:
            return sim.run(**WINDOWS)
        finally:
            sim.close()

    result = benchmark.pedantic(sharded, rounds=ROUNDS, iterations=1)
    serial_time, ref = _best_of(ROUNDS, serial)
    sharded_time, _ = _best_of(ROUNDS, sharded)
    assert result == ref, "sharded run diverged from serial"
    speedup = serial_time / sharded_time
    assert speedup >= SPEEDUP_FLOOR, (
        f"4-shard radix-32 Clos paid only {speedup:.2f}x "
        f"({serial_time:.2f}s serial vs {sharded_time:.2f}s sharded; "
        f"floor {SPEEDUP_FLOOR}x)"
    )


def test_perf_sharded_protocol_cost(benchmark):
    """Track the absolute cost of the 2-shard phase-barrier protocol.

    Runs on any machine (no speedup assertion): the baseline ratio
    catches regressions in the per-cycle exchange — pickling volume,
    stash bookkeeping, horizon plumbing — even where parallel speedup
    is unmeasurable.  Byte-identity with serial is re-asserted.
    """
    config = NetworkConfig(radix=16, levels=2, seed=3)

    reset_packet_ids()
    ref = NetworkSimulation(config, load=0.6).run(**WINDOWS)

    def sharded():
        reset_packet_ids()
        sim = ShardedNetworkSimulation(config, load=0.6, shards=2)
        try:
            return sim.run(**WINDOWS)
        finally:
            sim.close()

    result = benchmark.pedantic(sharded, rounds=ROUNDS, iterations=1)
    assert result == ref, "sharded run diverged from serial"


def test_perf_checkpoint_overhead(benchmark, tmp_path):
    """One mid-run save+load must cost <= 5% of the checkpointed run.

    Measured on a radix-16 Clos with paper-scale windows: the capture
    size is a function of the network's steady state, not of run
    length, so the bound asserts the overhead is amortizable — a
    checkpoint every measurement program costs noise, not minutes.
    """
    config = NetworkConfig(radix=16, levels=2, seed=3)
    windows = dict(warmup=2000, measure=4000, drain=8000)
    path = tmp_path / "perf.ckpt"

    def full_run():
        reset_packet_ids()
        sim = NetworkSimulation(config, load=0.6)
        return sim.run(**windows)

    run_time, ref = _best_of(ROUNDS, full_run)

    reset_packet_ids()
    sim = NetworkSimulation(config, load=0.6)
    sim.start_run(**windows)
    assert not sim.advance_run(stop_at=3000)

    def save_and_load():
        sim.save_checkpoint(path)
        return load_checkpoint(path)

    # Saving is read-only for the live simulation, so the save+load
    # cycle can be repeated for noise-robust timing.
    ckpt_times = []
    for _ in range(ROUNDS):
        start = time.perf_counter()  # lint: disable=R002
        save_and_load()
        ckpt_times.append(time.perf_counter() - start)  # lint: disable=R002
    ckpt_time = min(ckpt_times)
    resumed = benchmark.pedantic(save_and_load, rounds=ROUNDS, iterations=1)

    # The reloaded simulation must still finish byte-identically.
    assert resumed.advance_run()
    assert resumed.finish_run() == ref

    overhead = ckpt_time / run_time
    assert overhead <= CKPT_OVERHEAD_CEILING, (
        f"checkpoint save+load cost {overhead:.1%} of the run "
        f"({ckpt_time * 1000:.0f}ms vs {run_time:.2f}s; "
        f"ceiling {CKPT_OVERHEAD_CEILING:.0%})"
    )
