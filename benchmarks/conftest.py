"""Make the shared benchmark helpers importable as ``common``."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
