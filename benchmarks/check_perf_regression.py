"""Gate CI on simulator performance: compare a pytest-benchmark JSON
run against the checked-in baseline.

Absolute wall times differ wildly across CI machines, so the baseline
stores *reference-normalized ratios*: every benchmark's mean time is
divided by the mean of a designated reference benchmark from the same
run (the radix-32 baseline-router step, the simplest hot loop in the
tree).  Machine speed cancels out of the ratio; what remains is the
relative cost of each code path, which is what a regression changes.

Usage::

    pytest benchmarks/test_perf_simulator.py --benchmark-json=run.json
    python benchmarks/check_perf_regression.py run.json

    # Refresh the baseline after an intentional perf change:
    python benchmarks/check_perf_regression.py run.json --update

Exit status 1 when any benchmark's ratio exceeds its baseline ratio by
more than the tolerance (default 25%).  Benchmarks present in the run
but absent from the baseline are reported and skipped, so adding a
benchmark does not break CI until the baseline is refreshed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "results" / "perf_baseline.json"
REFERENCE = "test_perf_router_step[baseline]"
TOLERANCE = 0.25


def load_ratios(run_path: Path) -> dict:
    """Reference-normalized {benchmark name: ratio} from a run JSON."""
    data = json.loads(run_path.read_text())
    means = {b["name"]: b["stats"]["mean"] for b in data["benchmarks"]}
    if REFERENCE not in means:
        sys.exit(f"reference benchmark {REFERENCE!r} missing from run")
    ref = means[REFERENCE]
    if ref <= 0:
        sys.exit(f"reference benchmark mean is non-positive: {ref}")
    return {name: mean / ref for name, mean in sorted(means.items())}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("run", type=Path,
                        help="pytest-benchmark JSON output to check")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=TOLERANCE,
                        help="allowed fractional regression "
                             f"(default {TOLERANCE})")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run")
    args = parser.parse_args(argv)

    ratios = load_ratios(args.run)
    if args.update:
        args.baseline.parent.mkdir(exist_ok=True)
        args.baseline.write_text(json.dumps(
            {"reference": REFERENCE, "ratios": ratios}, indent=2
        ) + "\n")
        print(f"baseline updated: {args.baseline} "
              f"({len(ratios)} benchmarks)")
        return 0

    baseline = json.loads(args.baseline.read_text())
    if baseline.get("reference") != REFERENCE:
        sys.exit("baseline was built against a different reference "
                 f"benchmark: {baseline.get('reference')!r}")
    failures = []
    for name, base_ratio in sorted(baseline["ratios"].items()):
        if name == REFERENCE:
            continue
        if name not in ratios:
            failures.append(f"{name}: missing from this run")
            continue
        limit = base_ratio * (1.0 + args.tolerance)
        current = ratios[name]
        status = "FAIL" if current > limit else "ok"
        print(f"{status:>4}  {name}: {current:.3f}x reference "
              f"(baseline {base_ratio:.3f}x, limit {limit:.3f}x)")
        if current > limit:
            failures.append(
                f"{name}: {current:.3f}x vs baseline {base_ratio:.3f}x "
                f"(+{(current / base_ratio - 1) * 100:.0f}%)"
            )
    for name in sorted(set(ratios) - set(baseline["ratios"])):
        print(f" new  {name}: {ratios[name]:.3f}x reference "
              "(not in baseline; refresh with --update)")
    if failures:
        print(f"\nperf regression ({len(failures)}):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nperf check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
