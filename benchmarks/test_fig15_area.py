"""Figure 15: storage area vs wire area of the fully buffered crossbar.

Regenerates both curves over a radix sweep (v = 4, 0.10 um constants)
and checks the paper's anchor: wire area dominates at low radix, but
storage grows quadratically and overtakes it at radix ~50.
"""

from common import once, save_table

from repro.core.config import RouterConfig
from repro.harness.report import format_table
from repro.models.area import AreaModel, area_sweep, storage_crossover_radix

RADICES = (8, 16, 32, 48, 64, 96, 128, 192, 256)
CFG = RouterConfig(radix=8, num_vcs=4, subswitch_size=1)


def test_fig15_storage_vs_wire_area(benchmark):
    def run():
        rows = area_sweep("buffered", RADICES, CFG)
        crossover = storage_crossover_radix("buffered", CFG)
        return rows, crossover

    rows, crossover = once(benchmark, run)

    table = format_table(
        ["radix", "storage area (mm^2)", "wire area (mm^2)"],
        [(k, f"{s:.1f}", f"{w:.1f}") for k, s, w in rows],
        title="Figure 15: fully buffered crossbar area (v=4, 0.10um)",
    )
    table += f"\n\nstorage/wire crossover radix: {crossover}"
    save_table("fig15_area", table)

    # "For a radix greater than 50, storage area exceeds wire area."
    assert 40 <= crossover <= 60
    by_k = {k: (s, w) for k, s, w in rows}
    assert by_k[16][0] < by_k[16][1]  # wire dominates at low radix
    assert by_k[128][0] > by_k[128][1]  # storage dominates at high radix
    # Storage area grows quadratically (x4 radix -> ~x16 crosspoints).
    assert by_k[256][0] / by_k[64][0] > 10
