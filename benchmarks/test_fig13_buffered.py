"""Figure 13: latency vs offered load for the fully buffered crossbar.

Regenerates the three curves (low-radix centralized router, high-radix
distributed baseline with CVA, fully buffered crossbar) on uniform
random single-flit traffic.

Paper claims checked:
* the fully buffered crossbar maintains low latency at low load and
  saturates near 100% of capacity (head-of-line blocking eliminated,
  input and output arbitration decoupled);
* both other organizations saturate far below it.
"""

from common import (
    BASE_CONFIG,
    LOADS,
    LOW_RADIX,
    SAT_SETTINGS,
    SETTINGS,
    once,
    save_table,
)

from repro.harness.experiment import run_load_sweep, saturation_throughput
from repro.harness.report import format_sweeps
from repro.routers.baseline import BaselineRouter
from repro.routers.buffered import BufferedCrossbarRouter
from repro.routers.distributed import DistributedRouter

LOW_CONFIG = BASE_CONFIG.with_(
    radix=LOW_RADIX, subswitch_size=4, local_group_size=4
)


def test_fig13_fully_buffered(benchmark):
    def run():
        sweeps = [
            run_load_sweep(BaselineRouter, LOW_CONFIG, LOADS,
                           label="low-radix", settings=SETTINGS),
            run_load_sweep(DistributedRouter, BASE_CONFIG, LOADS,
                           label="baseline", settings=SETTINGS),
            run_load_sweep(BufferedCrossbarRouter, BASE_CONFIG, LOADS,
                           label="fully-buffered", settings=SETTINGS),
        ]
        sats = {
            "baseline": saturation_throughput(
                DistributedRouter, BASE_CONFIG, settings=SAT_SETTINGS),
            "fully-buffered": saturation_throughput(
                BufferedCrossbarRouter, BASE_CONFIG, settings=SAT_SETTINGS),
        }
        return sweeps, sats

    sweeps, sats = once(benchmark, run)

    table = format_sweeps(
        sweeps,
        title="Figure 13: latency vs offered load, fully buffered "
              "crossbar (uniform random, 1-flit packets, CVA)",
    )
    table += "\n\nsaturation throughput:\n" + "\n".join(
        f"  {name:16s} {thpt:.3f}" for name, thpt in sats.items()
    )
    save_table("fig13_buffered", table)

    # Near-100% saturation for the fully buffered crossbar.
    assert sats["fully-buffered"] > 0.90
    # Large gap over the unbuffered distributed baseline.
    assert sats["fully-buffered"] > sats["baseline"] + 0.25
    # Low latency maintained at low offered loads.
    buffered = sweeps[2]
    assert buffered.results[0].avg_latency < 3 * BASE_CONFIG.flit_cycles + 20
