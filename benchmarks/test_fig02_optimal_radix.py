"""Figure 2: latency-optimal radix versus router aspect ratio.

Regenerates the k*(A) curve of Equation 3 together with the four
annotated technology points, and checks the paper's anchors: the 2003
technology (A ~ 554) optimizes at radix ~40 and the 2010 technology
(A ~ 2978) at radix ~127.
"""

from common import once, save_table

from repro.harness.report import format_table
from repro.models.latency import optimal_radix, optimal_radix_continuous
from repro.models.technology import ALL_TECHNOLOGIES


def test_fig02_optimal_radix_vs_aspect_ratio(benchmark):
    def run():
        curve = []
        aspect = 10.0
        while aspect <= 20000.0:
            curve.append((aspect, optimal_radix_continuous(aspect)))
            aspect *= 1.5
        points = [
            (t.name, t.aspect_ratio, optimal_radix(t))
            for t in ALL_TECHNOLOGIES
        ]
        return curve, points

    curve, points = once(benchmark, run)

    table = format_table(
        ["aspect ratio", "optimal radix"],
        [(f"{a:.0f}", f"{k:.1f}") for a, k in curve],
        title="Figure 2: optimal radix vs aspect ratio (k ln^2 k = A)",
    )
    table += "\n\n" + format_table(
        ["technology", "aspect ratio", "optimal radix"],
        [(n, f"{a:.0f}", k) for n, a, k in points],
    )
    save_table("fig02_optimal_radix", table)

    by_name = {n: (a, k) for n, a, k in points}
    # Paper: A = 554 -> k* = 40 for 2003; A = 2978 -> k* = 127 for 2010.
    assert abs(by_name["2003 (SGI Altix 3000)"][1] - 40) <= 2
    assert abs(by_name["2010 (estimate)"][1] - 127) <= 4
    # The curve is monotonically increasing in the aspect ratio.
    ks = [k for _, k in curve]
    assert ks == sorted(ks)
