"""Figure 17: the hierarchical crossbar vs subswitch size.

Regenerates all four panels:

* (a) uniform random traffic — the hierarchical crossbar performs close
  to the fully buffered crossbar even with large subswitches;
* (b) worst-case traffic (all load concentrated on the diagonal
  subswitches) — smaller subswitches win; the hierarchical crossbar
  loses to the fully buffered design but still beats the baseline;
* (c) long packets with *equal total buffer storage* — the hierarchical
  crossbar (p=8, deeper boundary buffers) beats the fully buffered
  crossbar (shallow crosspoint buffers);
* (d) storage bits vs radix — quadratic growth for fully buffered,
  O(k^2/p) for hierarchical.
"""

from common import BASE_CONFIG, SAT_SETTINGS, once, save_table

from repro.harness.experiment import saturation_throughput
from repro.harness.report import format_table
from repro.models.area import (
    fully_buffered_storage_bits,
    hierarchical_storage_bits,
)
from repro.routers.buffered import BufferedCrossbarRouter
from repro.routers.distributed import DistributedRouter
from repro.routers.hierarchical import HierarchicalCrossbarRouter
from repro.traffic.patterns import UniformRandom, WorstCaseHierarchical

SUBSWITCH_SIZES = (4, 8, 16)
AREA_RADICES = (16, 32, 64, 128, 256)


def _hier(p, **kw):
    return BASE_CONFIG.with_(subswitch_size=p, **kw)


def test_fig17_hierarchical_crossbar(benchmark):
    def run():
        uniform = {"baseline": saturation_throughput(
            DistributedRouter, BASE_CONFIG, settings=SAT_SETTINGS)}
        uniform["fully-buffered"] = saturation_throughput(
            BufferedCrossbarRouter, BASE_CONFIG, settings=SAT_SETTINGS)
        for p in SUBSWITCH_SIZES:
            uniform[f"subswitch {p}"] = saturation_throughput(
                HierarchicalCrossbarRouter, _hier(p), settings=SAT_SETTINGS)

        worst = {}
        k = BASE_CONFIG.radix
        worst["baseline"] = saturation_throughput(
            DistributedRouter, BASE_CONFIG, settings=SAT_SETTINGS,
            pattern_factory=lambda c: WorstCaseHierarchical(k, 8))
        worst["fully-buffered"] = saturation_throughput(
            BufferedCrossbarRouter, BASE_CONFIG, settings=SAT_SETTINGS,
            pattern_factory=lambda c: WorstCaseHierarchical(k, 8))
        for p in SUBSWITCH_SIZES:
            worst[f"subswitch {p}"] = saturation_throughput(
                HierarchicalCrossbarRouter, _hier(p),
                settings=SAT_SETTINGS,
                pattern_factory=lambda c, p=p: WorstCaseHierarchical(k, p))

        # (c) equal total buffering, 10-flit packets: the hierarchical
        # crossbar's boundary buffers hold p/2 times a crosspoint
        # buffer's storage (paper footnote 5).
        p = 8
        equal_depth = BASE_CONFIG.crosspoint_buffer_depth * p // 2
        long_fb = saturation_throughput(
            BufferedCrossbarRouter,
            BASE_CONFIG.with_(input_buffer_depth=32),
            packet_size=10, settings=SAT_SETTINGS)
        long_hier = saturation_throughput(
            HierarchicalCrossbarRouter,
            _hier(p, subswitch_input_depth=equal_depth,
                  subswitch_output_depth=equal_depth,
                  input_buffer_depth=32),
            packet_size=10, settings=SAT_SETTINGS)

        area_rows = []
        for radix in AREA_RADICES:
            row = [radix, fully_buffered_storage_bits(
                BASE_CONFIG.with_(radix=radix, subswitch_size=1))]
            for p2 in (4, 8, 16):
                row.append(hierarchical_storage_bits(
                    BASE_CONFIG.with_(radix=radix, subswitch_size=p2)))
            area_rows.append(tuple(row))
        return uniform, worst, long_fb, long_hier, area_rows

    uniform, worst, long_fb, long_hier, area_rows = once(benchmark, run)

    table = format_table(
        ["architecture", "saturation throughput"],
        [(n, f"{t:.3f}") for n, t in uniform.items()],
        title="Figure 17(a): uniform random traffic",
    )
    table += "\n\n" + format_table(
        ["architecture", "saturation throughput"],
        [(n, f"{t:.3f}") for n, t in worst.items()],
        title="Figure 17(b): worst-case traffic",
    )
    table += (
        "\n\nFigure 17(c): 10-flit packets, equal total buffer storage\n"
        f"  fully buffered (4-flit crosspoints): {long_fb:.3f}\n"
        f"  hierarchical p=8 (16-flit buffers):  {long_hier:.3f}"
    )
    table += "\n\n" + format_table(
        ["radix", "fully buffered", "hier p=4", "hier p=8", "hier p=16"],
        [(k, *[f"{b:,}" for b in row]) for k, *row in area_rows],
        title="Figure 17(d): storage bits vs radix",
    )
    save_table("fig17_hierarchical", table)

    # (a) Hierarchical ~ fully buffered on uniform random traffic.
    for p in SUBSWITCH_SIZES:
        assert uniform[f"subswitch {p}"] > uniform["fully-buffered"] - 0.08
    assert uniform["subswitch 8"] > uniform["baseline"] + 0.15

    # (b) Worst case: smaller subswitches win; hier between baseline
    # and fully buffered.
    assert worst["subswitch 4"] >= worst["subswitch 16"]
    assert worst["subswitch 8"] < worst["fully-buffered"] - 0.05
    assert worst["subswitch 8"] > worst["baseline"] + 0.05

    # (c) Equal storage, long packets: hierarchical wins.
    assert long_hier > long_fb

    # (d) Storage ordering and quadratic growth.
    for k, fb, h4, h8, h16 in area_rows:
        assert h16 < h8 < h4 < fb
    fb_by_k = {k: fb for k, fb, *_ in area_rows}
    assert fb_by_k[256] / fb_by_k[64] > 10
