"""Shared infrastructure for the figure-regeneration benchmarks.

Every benchmark regenerates one table or figure from the paper: it runs
the corresponding experiment, renders the same series the paper plots
as a text table, writes it to ``benchmarks/results/``, and asserts the
paper's qualitative claims (who wins, by roughly what factor, where the
crossovers fall).  Absolute cycle counts are not expected to match the
authors' C simulator.

Scale control: set ``REPRO_SCALE=paper`` for the paper's radix-64
configuration with long measurement windows (slow in pure Python), or
leave the default ``fast`` scale — radix 32 with the same v=4, p=8,
m=8 structure and shorter windows — which preserves every qualitative
result.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core.config import RouterConfig
from repro.harness.experiment import SweepSettings

RESULTS_DIR = Path(__file__).parent / "results"

#: Offered-load points for latency-load curves.
LOADS = (0.1, 0.3, 0.5, 0.7, 0.9)

SCALE = os.environ.get("REPRO_SCALE", "fast")

if SCALE == "paper":
    #: The paper's evaluation point: radix 64, 4 VCs, p=8, m=8.
    BASE_CONFIG = RouterConfig(radix=64)
    SETTINGS = SweepSettings(warmup=5000, measure=5000, drain=50000)
    SAT_SETTINGS = SweepSettings(warmup=5000, measure=5000, drain=200)
    LOW_RADIX = 16
    NETWORK_SCALE = dict(high_radix=16, high_levels=2, low_radix=8,
                         low_levels=3)
else:
    #: Reduced scale: radix 32 keeps the k/p = 4 subswitch grid and
    #: m = 8 arbitration groups of the paper's design point.
    BASE_CONFIG = RouterConfig(radix=32)
    SETTINGS = SweepSettings(warmup=800, measure=1200, drain=20000)
    SAT_SETTINGS = SweepSettings(warmup=800, measure=1200, drain=100)
    LOW_RADIX = 16
    NETWORK_SCALE = dict(high_radix=16, high_levels=2, low_radix=8,
                         low_levels=3)


def save_table(name: str, text: str) -> None:
    """Write a regenerated figure table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    # Also echo to stdout so `pytest -s` shows it inline.
    print()
    print(text)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
