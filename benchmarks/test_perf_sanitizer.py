"""Sanitizer overhead: cost of per-cycle structural checking.

Not a paper figure — this benchmark bounds the slowdown of running a
simulation under :class:`repro.analysis.SimSanitizer` so the sanitizer
stays cheap enough to leave on in CI smoke runs and property tests.
The per-cycle structural checks walk every buffer, credit counter, and
VC ledger entry, so the overhead is architecture-dependent; the bound
is asserted on the radix-16 baseline and buffered-crossbar
organizations (centralized and most check-heavy, respectively).
"""

import time  # R002 flags wall-clock *calls*; the perf_counter sites below carry pragmas

import pytest

from repro.analysis.sanitizer import SimSanitizer
from repro.core.config import RouterConfig
from repro.harness.experiment import SwitchSimulation
from repro.routers.baseline import BaselineRouter
from repro.routers.buffered import BufferedCrossbarRouter

CYCLES = 400
CONFIG = RouterConfig(radix=16)

#: Maximum tolerated slowdown of a fully-checked run (interval=1).
MAX_OVERHEAD = 3.0

ROUTERS = {
    "baseline": BaselineRouter,
    "buffered": BufferedCrossbarRouter,
}


def _run(cls, sanitize, check_interval=1):
    router = cls(CONFIG)
    if sanitize:
        router = SimSanitizer(router, check_interval=check_interval)
    sim = SwitchSimulation(router, load=0.6, seed=11)
    for _ in range(CYCLES):
        sim.step()
    return sim.router.stats.flits_ejected


def _time(fn, repeats=3):
    """Best-of-N wall time (minimum is the least noisy estimator)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()  # lint: disable=R002
        fn()
        best = min(best, time.perf_counter() - start)  # lint: disable=R002
    return best


@pytest.mark.parametrize("name", sorted(ROUTERS))
def test_perf_sanitizer_step(benchmark, name):
    """Track the absolute cost of a fully sanitized simulation."""
    cls = ROUTERS[name]
    delivered = benchmark.pedantic(
        lambda: _run(cls, sanitize=True), rounds=3, iterations=1
    )
    assert delivered > 0


@pytest.mark.parametrize("name", sorted(ROUTERS))
def test_sanitizer_overhead_bounded(name):
    """Per-cycle structural checking costs < MAX_OVERHEAD x runtime."""
    cls = ROUTERS[name]
    base = _time(lambda: _run(cls, sanitize=False))
    checked = _time(lambda: _run(cls, sanitize=True))
    overhead = checked / base
    assert overhead < MAX_OVERHEAD, (
        f"{name}: sanitized run is {overhead:.2f}x the plain run "
        f"(limit {MAX_OVERHEAD}x)"
    )


def test_check_interval_reduces_overhead():
    """Sparse checking (interval=8) must be cheaper than every-cycle."""
    cls = ROUTERS["buffered"]
    every = _time(lambda: _run(cls, sanitize=True, check_interval=1))
    sparse = _time(lambda: _run(cls, sanitize=True, check_interval=8))
    assert sparse < every
