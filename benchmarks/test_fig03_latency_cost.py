"""Figure 3: (a) network latency and (b) network cost versus radix.

Regenerates both curves for the 2003 and 2010 technologies and checks
the paper's claims: latency is U-shaped with its minimum at the optimal
radix (~40 for 2003, ~127 for 2010); cost decreases monotonically with
radix; and the 2010 network costs more than the 2003 one because it has
more nodes (footnote 4).
"""

from common import once, save_table

from repro.harness.report import format_table
from repro.models.cost import network_cost
from repro.models.latency import optimal_radix, packet_latency
from repro.models.technology import TECH_2003, TECH_2010

RADICES = list(range(8, 260, 8))


def test_fig03_latency_and_cost_vs_radix(benchmark):
    def run():
        rows = []
        for k in RADICES:
            rows.append((
                k,
                packet_latency(k, TECH_2003) * 1e9,
                packet_latency(k, TECH_2010) * 1e9,
                network_cost(k, TECH_2003, unit_cost=1000.0),
                network_cost(k, TECH_2010, unit_cost=1000.0),
            ))
        return rows

    rows = once(benchmark, run)

    table = format_table(
        ["radix", "latency 2003 (ns)", "latency 2010 (ns)",
         "cost 2003 (k channels)", "cost 2010 (k channels)"],
        [(k, f"{l3:.1f}", f"{l10:.1f}", f"{c3:.2f}", f"{c10:.2f}")
         for k, l3, l10, c3, c10 in rows],
        title="Figure 3: latency (a) and cost (b) vs radix",
    )
    save_table("fig03_latency_cost", table)

    lat03 = {k: l for k, l, _, _, _ in rows}
    lat10 = {k: l for k, _, l, _, _ in rows}
    cost03 = [c for *_, c, _ in rows]
    cost10 = [c for *_, c in rows]

    # (a) U-shape with minima near the Figure 2 optima.
    best03 = min(lat03, key=lat03.get)
    best10 = min(lat10, key=lat10.get)
    assert abs(best03 - optimal_radix(TECH_2003)) <= 8
    assert abs(best10 - optimal_radix(TECH_2010)) <= 8
    assert lat03[RADICES[0]] > lat03[best03]
    assert lat03[RADICES[-1]] > lat03[best03]

    # (b) cost decreases monotonically; 2010 above 2003.
    assert cost03 == sorted(cost03, reverse=True)
    assert cost10 == sorted(cost10, reverse=True)
    assert all(c10 > c03 for c03, c10 in zip(cost03, cost10))
