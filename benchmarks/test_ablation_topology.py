"""Ablation (Section 9, future work): Clos vs mesh at equal host count.

The paper's conclusion points at topology design as the next frontier
for high-radix routers.  This ablation runs the network simulator over
two topologies with identical host counts — the Figure 19 folded Clos
with oblivious routing, and a 2D mesh with dimension-order routing —
and confirms the structural expectation: the indirect network's lower
hop count translates into lower latency at every load, at the price of
more switch hardware.
"""

from common import once, save_table

from repro.harness.report import format_table
from repro.network import FoldedClos, Mesh, NetworkConfig, NetworkSimulation

LOADS = (0.1, 0.3, 0.5)


def test_ablation_clos_vs_mesh(benchmark):
    clos = FoldedClos(radix=8, levels=2)
    mesh = Mesh(dims=(4, 4), concentration=1)
    assert clos.num_hosts == mesh.num_hosts == 16

    def run():
        curves = {}
        for name, topo, radix in (("clos", clos, 8), ("mesh", mesh, 5)):
            rows = []
            for load in LOADS:
                cfg = NetworkConfig(radix=radix, num_vcs=2)
                sim = NetworkSimulation(cfg, load, topology=topo)
                r = sim.run(warmup=600, measure=800, drain=6000)
                rows.append((load, r.avg_latency, r.throughput))
            curves[name] = rows
        return curves

    curves = once(benchmark, run)

    table_rows = []
    for idx, load in enumerate(LOADS):
        table_rows.append((
            load,
            f"{curves['clos'][idx][1]:.1f}",
            f"{curves['mesh'][idx][1]:.1f}",
        ))
    table = format_table(
        ["load", "clos latency", "mesh latency"],
        table_rows,
        title=(
            "Ablation: folded Clos (radix 8, 3-stage, "
            f"{clos.num_switches} switches) vs 4x4 mesh "
            f"({mesh.num_switches} switches), 16 hosts, "
            f"avg hops {clos.average_hop_count():.2f} vs "
            f"{mesh.average_hop_count():.2f}"
        ),
    )
    save_table("ablation_topology", table)

    # Fewer hops -> lower latency at every measured load.
    for idx in range(len(LOADS)):
        assert curves["clos"][idx][1] < curves["mesh"][idx][1]
    # Both topologies carry the offered load below saturation.
    for name in ("clos", "mesh"):
        for load, _lat, thpt in curves[name]:
            assert thpt > load - 0.08
