"""Ablation (Section 8): VOQ + iSLIP vs the paper's buffered crossbars.

The paper positions its designs against virtual output queueing: a VOQ
switch achieves ~100% throughput but needs O(k^2) buffering *and* a
complex centralized allocator, whereas "the simple distributed
allocation scheme discussed in Section 4 is able to achieve 100%
throughput" once crosspoint buffers are added.  This ablation makes the
comparison concrete: saturation throughput of the VOQ switch (1 and 2
iSLIP iterations) against the fully buffered and hierarchical
crossbars, along with each design's storage bill.
"""

from common import BASE_CONFIG, SAT_SETTINGS, once, save_table

from repro.harness.experiment import saturation_throughput
from repro.harness.report import format_table
from repro.models.area import (
    fully_buffered_storage_bits,
    hierarchical_storage_bits,
    voq_storage_bits,
)
from repro.routers.buffered import BufferedCrossbarRouter
from repro.routers.hierarchical import HierarchicalCrossbarRouter
from repro.routers.voq import VoqRouter


def test_ablation_voq_vs_buffered(benchmark):
    def run():
        sats = {
            "VOQ iSLIP-1": saturation_throughput(
                lambda c: VoqRouter(c, iterations=1), BASE_CONFIG,
                settings=SAT_SETTINGS),
            "VOQ iSLIP-2": saturation_throughput(
                lambda c: VoqRouter(c, iterations=2), BASE_CONFIG,
                settings=SAT_SETTINGS),
            "fully buffered": saturation_throughput(
                BufferedCrossbarRouter, BASE_CONFIG, settings=SAT_SETTINGS),
            "hierarchical p=8": saturation_throughput(
                HierarchicalCrossbarRouter,
                BASE_CONFIG.with_(subswitch_size=8),
                settings=SAT_SETTINGS),
        }
        bits = {
            "VOQ iSLIP-1": voq_storage_bits(BASE_CONFIG),
            "VOQ iSLIP-2": voq_storage_bits(BASE_CONFIG),
            "fully buffered": fully_buffered_storage_bits(BASE_CONFIG),
            "hierarchical p=8": hierarchical_storage_bits(
                BASE_CONFIG.with_(subswitch_size=8)),
        }
        return sats, bits

    sats, bits = once(benchmark, run)

    table = format_table(
        ["architecture", "saturation throughput", "storage (bits)",
         "allocator"],
        [
            ("VOQ iSLIP-1", f"{sats['VOQ iSLIP-1']:.3f}",
             f"{bits['VOQ iSLIP-1']:,}", "centralized, iterative"),
            ("VOQ iSLIP-2", f"{sats['VOQ iSLIP-2']:.3f}",
             f"{bits['VOQ iSLIP-2']:,}", "centralized, iterative"),
            ("fully buffered", f"{sats['fully buffered']:.3f}",
             f"{bits['fully buffered']:,}", "distributed"),
            ("hierarchical p=8", f"{sats['hierarchical p=8']:.3f}",
             f"{bits['hierarchical p=8']:,}", "distributed"),
        ],
        title="Ablation: VOQ + iSLIP vs buffered crossbars "
              "(uniform random, 1-flit packets)",
    )
    save_table("ablation_voq", table)

    # All three high-throughput organizations land in the same band...
    for name in ("VOQ iSLIP-2", "fully buffered", "hierarchical p=8"):
        assert sats[name] > 0.85
    # ...but the hierarchical crossbar does it with far less storage
    # than either O(k^2) design.
    assert bits["hierarchical p=8"] < bits["VOQ iSLIP-1"] / 2
    assert bits["hierarchical p=8"] < bits["fully buffered"] / 2
    # A second iSLIP iteration helps the VOQ switch.
    assert sats["VOQ iSLIP-2"] >= sats["VOQ iSLIP-1"]
