"""Simulator performance: cycles per second for each router model.

Not a paper figure — this benchmark tracks the cost of the simulation
substrate itself, which determines how close to the paper's radix-64 /
long-window configuration a given machine can run.  pytest-benchmark's
statistics across rounds make regressions in the hot per-cycle loops
visible.

The active-set tests compare the engine's two schedules: active-set
(idle routers parked, known-empty input ports skipped) against the
exhaustive reference (everything scanned every cycle).  Both must
produce byte-identical results; the active-set schedule must be at
least 1.5x faster on the low-load configurations where parking pays.
"""

import time

import pytest

from common import BASE_CONFIG

from repro.core.config import RouterConfig
from repro.harness.experiment import SwitchSimulation
from repro.network.netsim import ClosNetworkSimulation, NetworkConfig
from repro.routers.baseline import BaselineRouter
from repro.routers.buffered import BufferedCrossbarRouter
from repro.routers.distributed import DistributedRouter
from repro.routers.hierarchical import HierarchicalCrossbarRouter
from repro.routers.shared_buffer import SharedBufferCrossbarRouter
from repro.routers.voq import VoqRouter

CYCLES = 300

ROUTERS = {
    "baseline": BaselineRouter,
    "distributed": DistributedRouter,
    "buffered": BufferedCrossbarRouter,
    "shared_buffer": SharedBufferCrossbarRouter,
    "hierarchical": HierarchicalCrossbarRouter,
    "voq": VoqRouter,
}


@pytest.mark.parametrize("name", sorted(ROUTERS))
def test_perf_router_step(benchmark, name):
    cls = ROUTERS[name]

    def run():
        sim = SwitchSimulation(cls(BASE_CONFIG), load=0.6)
        for _ in range(CYCLES):
            sim.step()
        return sim.router.stats.flits_ejected

    delivered = benchmark.pedantic(run, rounds=3, iterations=1)
    # Sanity: the simulated router actually moved traffic.
    assert delivered > 0


# ----------------------------------------------------------------------
# Active-set scheduling speedup (and its results-identical contract)
# ----------------------------------------------------------------------

SPEEDUP_FLOOR = 1.5
ROUNDS = 3


def _best_of(rounds, fn):
    """Minimum wall time over ``rounds`` runs (noise-robust ratio)."""
    times = []
    checksum = None
    for _ in range(rounds):
        start = time.perf_counter()  # lint: disable=R002
        value = fn()
        times.append(time.perf_counter() - start)  # lint: disable=R002
        if checksum is None:
            checksum = value
        else:
            assert value == checksum, "run is not deterministic"
    return min(times), checksum


def test_perf_active_set_radix64_low_load(benchmark):
    """Radix-64 switch at low load: parking must pay >= 1.5x."""
    def run(active_set):
        sim = SwitchSimulation(
            HierarchicalCrossbarRouter(RouterConfig(radix=64)),
            load=0.005, active_set=active_set,
        )
        for _ in range(2000):
            sim.step()
        return sim.router.stats.flits_ejected

    exhaustive, ref = _best_of(ROUNDS, lambda: run(False))

    def timed_active():
        return run(True)

    delivered = benchmark.pedantic(timed_active, rounds=ROUNDS,
                                   iterations=1)
    active, _ = _best_of(ROUNDS, timed_active)
    assert delivered == ref, "active-set changed the simulation"
    assert delivered > 0
    speedup = exhaustive / active
    assert speedup >= SPEEDUP_FLOOR, (
        f"active-set speedup {speedup:.2f}x below {SPEEDUP_FLOOR}x "
        f"(exhaustive {exhaustive:.3f}s, active {active:.3f}s)"
    )


def test_perf_active_set_clos_radix16(benchmark):
    """2-level radix-16 Clos: parked stages must pay >= 1.5x."""
    def run(active_set):
        sim = ClosNetworkSimulation(
            NetworkConfig(radix=16, levels=2), load=0.02,
            active_set=active_set,
        )
        for _ in range(1500):
            sim.step()
        resident = sum(r.occupancy() for r in sim.routers.values())
        return (len(sim._inflight), resident)

    exhaustive, ref = _best_of(ROUNDS, lambda: run(False))

    def timed_active():
        return run(True)

    checksum = benchmark.pedantic(timed_active, rounds=ROUNDS,
                                  iterations=1)
    active, _ = _best_of(ROUNDS, timed_active)
    assert checksum == ref, "active-set changed the simulation"
    speedup = exhaustive / active
    assert speedup >= SPEEDUP_FLOOR, (
        f"active-set speedup {speedup:.2f}x below {SPEEDUP_FLOOR}x "
        f"(exhaustive {exhaustive:.3f}s, active {active:.3f}s)"
    )
