"""Simulator performance: cycles per second for each router model.

Not a paper figure — this benchmark tracks the cost of the simulation
substrate itself, which determines how close to the paper's radix-64 /
long-window configuration a given machine can run.  pytest-benchmark's
statistics across rounds make regressions in the hot per-cycle loops
visible.

The active-set tests compare the engine's two schedules: active-set
(idle routers parked, known-empty input ports skipped) against the
exhaustive reference (everything scanned every cycle).  Both must
produce byte-identical results; the active-set schedule must be at
least 1.5x faster on the low-load configurations where parking pays.
"""

import time

import pytest

from common import BASE_CONFIG

from repro.core.config import RouterConfig
from repro.harness.experiment import SwitchSimulation
from repro.network.netsim import ClosNetworkSimulation, NetworkConfig
from repro.routers.baseline import BaselineRouter
from repro.routers.buffered import BufferedCrossbarRouter
from repro.routers.distributed import DistributedRouter
from repro.routers.hierarchical import HierarchicalCrossbarRouter
from repro.routers.shared_buffer import SharedBufferCrossbarRouter
from repro.routers.voq import VoqRouter

CYCLES = 300

ROUTERS = {
    "baseline": BaselineRouter,
    "distributed": DistributedRouter,
    "buffered": BufferedCrossbarRouter,
    "shared_buffer": SharedBufferCrossbarRouter,
    "hierarchical": HierarchicalCrossbarRouter,
    "voq": VoqRouter,
}


@pytest.mark.parametrize("name", sorted(ROUTERS))
def test_perf_router_step(benchmark, name):
    cls = ROUTERS[name]

    def run():
        sim = SwitchSimulation(cls(BASE_CONFIG), load=0.6)
        for _ in range(CYCLES):
            sim.step()
        return sim.router.stats.flits_ejected

    delivered = benchmark.pedantic(run, rounds=3, iterations=1)
    # Sanity: the simulated router actually moved traffic.
    assert delivered > 0


# ----------------------------------------------------------------------
# Active-set scheduling speedup (and its results-identical contract)
# ----------------------------------------------------------------------

SPEEDUP_FLOOR = 1.5

#: The event scheduler must beat the cycle stepper by this much on the
#: radix-64 low-load Clos drive loop (the working target is 10x).
EVENT_FF_FLOOR = 5.0

ROUNDS = 3


def _best_of(rounds, fn):
    """Minimum wall time over ``rounds`` runs (noise-robust ratio)."""
    times = []
    checksum = None
    for _ in range(rounds):
        start = time.perf_counter()  # lint: disable=R002
        value = fn()
        times.append(time.perf_counter() - start)  # lint: disable=R002
        if checksum is None:
            checksum = value
        else:
            assert value == checksum, "run is not deterministic"
    return min(times), checksum


# ----------------------------------------------------------------------
# Tracing overhead: the disabled hook guards must be (nearly) free
# ----------------------------------------------------------------------

#: Max fraction of run time the disabled emission guards may cost.
TRACE_OVERHEAD_CEILING = 0.05


def test_perf_tracing_disabled_overhead(benchmark):
    """With no collector attached, the ``if hooks.stage_enter:``-style
    guards added for repro.trace must cost <= 5% of the run.

    A/B wall-time comparison of two full runs is hopeless at the 5%
    level (scheduler noise alone swings pedantic means by more), so the
    bound is measured directly: count how often the emission guards
    fire in a representative run (by subscribing counters to every
    hook event — one callback per would-be guard evaluation), measure
    the per-evaluation cost of a cold guard on the same bus type, and
    compare the product against the untraced wall time.
    """
    from repro.engine.hooks import EngineHooks
    from repro.trace import COUNT_ONLY, TraceCollector

    config = RouterConfig(radix=32)

    def run(tracer=None):
        sim = SwitchSimulation(
            HierarchicalCrossbarRouter(config), load=0.6, tracer=tracer,
        )
        for _ in range(400):
            sim.step()
        return sim.router.stats.flits_ejected

    delivered = benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    assert delivered > 0
    untraced, _ = _best_of(ROUNDS, run)

    # Attaching a collector must not change the simulation (passivity).
    traced_delivered = run(TraceCollector(trace_filter=COUNT_ONLY))
    assert traced_delivered == delivered, "tracing changed the simulation"

    # Count guard firings: each emitted event is one taken guard.
    events = [0]

    def count(*_args):
        events[0] += 1

    counting = SwitchSimulation(
        HierarchicalCrossbarRouter(config), load=0.6,
    )
    bus = counting.hooks
    for hook in ("on_flit_move", "on_stage_enter", "on_spec_outcome",
                 "on_grant", "on_credit", "on_cycle_start",
                 "on_cycle_end"):
        getattr(bus, hook)(count)
    for _ in range(400):
        counting.step()
    assert events[0] > 0

    # Per-evaluation cost of a disabled guard (attribute load + empty
    # list truthiness), min over rounds like the wall times above.
    idle = EngineHooks()
    reps = 100_000
    per_eval_times = []
    for _ in range(ROUNDS):
        start = time.perf_counter()  # lint: disable=R002
        for _ in range(reps):
            if idle.stage_enter:
                pass  # pragma: no cover - the list is empty
        per_eval_times.append(
            (time.perf_counter() - start) / reps  # lint: disable=R002
        )
    guard_cost = min(per_eval_times) * events[0]

    overhead = guard_cost / untraced
    assert overhead <= TRACE_OVERHEAD_CEILING, (
        f"disabled-tracing guards cost {overhead:.1%} of the run "
        f"({events[0]} guard evaluations x "
        f"{min(per_eval_times) * 1e9:.0f}ns vs {untraced:.3f}s; "
        f"ceiling {TRACE_OVERHEAD_CEILING:.0%})"
    )


# ----------------------------------------------------------------------
# Fault-injection overhead: the faults-disabled guards must be free
# ----------------------------------------------------------------------

#: Max fraction of run time the faults-disabled guards may cost.
FAULTS_OVERHEAD_CEILING = 0.05


def test_perf_faults_disabled_overhead(benchmark):
    """With ``faults=None``, the repro.faults guards (``self._faults is
    not None`` in the harness, the ``_stuck_inputs`` truthiness test in
    router eligibility scans, ``drop_hook is not None`` in the credit
    pipes) must cost <= 5% of the run.

    Same analytic approach as the tracing bound above: an A/B
    wall-clock comparison cannot resolve 5%, so the per-evaluation
    cost of each disabled-guard shape is measured cold and multiplied
    by a deliberately generous over-count of evaluations.
    """
    config = RouterConfig(radix=32)
    cycles = 400

    def run():
        sim = SwitchSimulation(
            HierarchicalCrossbarRouter(config), load=0.6, faults=None,
        )
        for _ in range(cycles):
            sim.step()
        return sim.router.stats.flits_ejected

    delivered = benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    assert delivered > 0
    baseline, _ = _best_of(ROUNDS, run)

    # Generous over-count of guard evaluations per cycle: the
    # eligibility scan consults each (input, vc) stuck guard once per
    # cycle (doubled for cushion), every input pays the harness
    # injection guards, every credit delivery one drop_hook test, plus
    # per-cycle harness checks.
    scan_passes = 2
    per_cycle = (
        config.radix * config.num_vcs * scan_passes   # stuck guards
        + config.radix * 3                            # inject + drop_hook
        + 4                                           # step()-level
    )
    evals = cycles * per_cycle

    # Per-evaluation cost of the two disabled-guard shapes, measured
    # inline exactly as the hot paths spell them (the routers inline
    # the stuck test rather than calling ``_input_stuck``, so no
    # function-call overhead belongs in the bound); take the slower
    # shape.
    class _Host:
        def __init__(self):
            self.fault_injector = None
            self.stuck = set()

    host = _Host()
    reps = 300_000
    shape_costs = []

    times = []
    for _ in range(ROUNDS):
        start = time.perf_counter()  # lint: disable=R002
        for _ in range(reps):
            if host.fault_injector is not None:
                pass  # pragma: no cover - guards are disabled
        times.append(
            (time.perf_counter() - start) / reps  # lint: disable=R002
        )
    shape_costs.append(min(times))

    times = []
    for _ in range(ROUNDS):
        start = time.perf_counter()  # lint: disable=R002
        for _ in range(reps):
            if host.stuck and (0, 0) in host.stuck:
                pass  # pragma: no cover - guards are disabled
        times.append(
            (time.perf_counter() - start) / reps  # lint: disable=R002
        )
    shape_costs.append(min(times))

    guard_cost = max(shape_costs) * evals

    overhead = guard_cost / baseline
    assert overhead <= FAULTS_OVERHEAD_CEILING, (
        f"disabled-faults guards cost {overhead:.1%} of the run "
        f"({evals} guard evaluations x {max(shape_costs) * 1e9:.0f}ns "
        f"vs {baseline:.3f}s; ceiling {FAULTS_OVERHEAD_CEILING:.0%})"
    )


def test_perf_active_set_radix64_low_load(benchmark):
    """Radix-64 switch at low load: parking must pay >= 1.5x."""
    def run(active_set):
        sim = SwitchSimulation(
            HierarchicalCrossbarRouter(RouterConfig(radix=64)),
            load=0.005, active_set=active_set,
        )
        for _ in range(2000):
            sim.step()
        return sim.router.stats.flits_ejected

    exhaustive, ref = _best_of(ROUNDS, lambda: run(False))

    def timed_active():
        return run(True)

    delivered = benchmark.pedantic(timed_active, rounds=ROUNDS,
                                   iterations=1)
    active, _ = _best_of(ROUNDS, timed_active)
    assert delivered == ref, "active-set changed the simulation"
    assert delivered > 0
    speedup = exhaustive / active
    assert speedup >= SPEEDUP_FLOOR, (
        f"active-set speedup {speedup:.2f}x below {SPEEDUP_FLOOR}x "
        f"(exhaustive {exhaustive:.3f}s, active {active:.3f}s)"
    )


def test_perf_event_ff_clos_radix64(benchmark):
    """Radix-64 Clos at very low load: fast-forward must pay >= 5x.

    The ratio compares the drive loops only — each round constructs a
    fresh simulation outside its clock, because event mode pays a
    one-time cost mirroring the host RNG streams into numpy that
    amortizes over windows far longer than this one, while the
    contract under test is the per-cycle loop inversion.  10x is the
    working target on this configuration; 5x is the asserted floor.
    """
    load = 5e-5
    cycles = 2500

    def run(scheduler):
        sim = ClosNetworkSimulation(
            NetworkConfig(radix=64, levels=2, num_vcs=2, packet_size=2,
                          seed=5),
            load, scheduler=scheduler,
        )
        start = time.perf_counter()  # lint: disable=R002
        sim.run_until(cycles)
        elapsed = time.perf_counter() - start  # lint: disable=R002
        resident = sum(r.occupancy() for r in sim.routers.values())
        checksum = (len(sim._inflight), resident,
                    sim._scheduler.component_steps)
        return elapsed, checksum

    def best_of(scheduler):
        best, checksum = None, None
        for _ in range(ROUNDS):
            elapsed, value = run(scheduler)
            best = elapsed if best is None else min(best, elapsed)
            if checksum is None:
                checksum = value
            else:
                assert value == checksum, "run is not deterministic"
        return best, checksum

    def timed_event():
        _, checksum = run("event")
        return checksum

    recorded = benchmark.pedantic(timed_event, rounds=ROUNDS, iterations=1)
    cycle_time, ref = best_of("cycle")
    event_time, checksum = best_of("event")
    assert recorded == checksum == ref, "scheduler changed the simulation"
    speedup = cycle_time / event_time
    assert speedup >= EVENT_FF_FLOOR, (
        f"fast-forward speedup {speedup:.2f}x below {EVENT_FF_FLOOR}x "
        f"(cycle {cycle_time:.3f}s, event {event_time:.3f}s)"
    )


#: The batched hot path must beat the scalar stages by this much on
#: the radix-64 deep-saturation buffered crossbar (working ~4.5x).
BATCH_SPEEDUP_FLOOR = 3.0


def test_perf_batch_hot_path_radix64_high_load(benchmark):
    """Radix-64 buffered crossbar in deep hotspot saturation: the
    struct-of-arrays batched path must pay >= 3x on the steady state.

    This is the regime the batched path exists for — and the one
    event-driven fast-forward cannot help with (it measures ~1x here:
    every router is busy every cycle, so there is nothing to skip).
    Four fully-hot outputs with eight VCs keep every input backlogged
    behind heads that lack credits, so the scalar path pays its full
    O(k*v) eligibility scans per cycle while only ~1 flit/cycle of
    shared per-flit harness work dilutes the ratio.  The warmup runs
    the switch to saturation outside the clock; the timed window
    compares the drive loops on the steady state, best-of-N against
    scheduler noise.  The checksum doubles as a scalar-vs-batched
    identity assertion.
    """
    pytest.importorskip("numpy")
    from repro.traffic.patterns import Hotspot

    warmup, cycles = 1500, 400

    def run(batch):
        config = RouterConfig(radix=64, num_vcs=8, seed=5,
                              batch_hot_path=batch)
        sim = SwitchSimulation(
            BufferedCrossbarRouter(config), load=0.95, packet_size=4,
            pattern=Hotspot(64, num_hotspots=4, hot_fraction=1.0),
        )
        for _ in range(warmup):
            sim.step()
        start = time.perf_counter()  # lint: disable=R002
        for _ in range(cycles):
            sim.step()
        elapsed = time.perf_counter() - start  # lint: disable=R002
        stats = sim.router.stats
        return elapsed, (stats.flits_accepted, stats.flits_ejected,
                         sim.router.occupancy())

    def best_of(batch):
        best, checksum = None, None
        for _ in range(ROUNDS):
            elapsed, value = run(batch)
            best = elapsed if best is None else min(best, elapsed)
            if checksum is None:
                checksum = value
            else:
                assert value == checksum, "run is not deterministic"
        return best, checksum

    def timed_batched():
        _, checksum = run(True)
        return checksum

    recorded = benchmark.pedantic(timed_batched, rounds=ROUNDS,
                                  iterations=1)
    scalar_time, ref = best_of(False)
    batch_time, checksum = best_of(True)
    assert recorded == checksum == ref, (
        "batched path changed the simulation"
    )
    assert ref[1] > 0
    speedup = scalar_time / batch_time
    assert speedup >= BATCH_SPEEDUP_FLOOR, (
        f"batched hot path speedup {speedup:.2f}x below "
        f"{BATCH_SPEEDUP_FLOOR}x (scalar {scalar_time:.3f}s, batched "
        f"{batch_time:.3f}s)"
    )


def test_perf_active_set_clos_radix16(benchmark):
    """2-level radix-16 Clos: parked stages must pay >= 1.5x."""
    def run(active_set):
        sim = ClosNetworkSimulation(
            NetworkConfig(radix=16, levels=2), load=0.02,
            active_set=active_set,
        )
        for _ in range(1500):
            sim.step()
        resident = sum(r.occupancy() for r in sim.routers.values())
        return (len(sim._inflight), resident)

    exhaustive, ref = _best_of(ROUNDS, lambda: run(False))

    def timed_active():
        return run(True)

    checksum = benchmark.pedantic(timed_active, rounds=ROUNDS,
                                  iterations=1)
    active, _ = _best_of(ROUNDS, timed_active)
    assert checksum == ref, "active-set changed the simulation"
    speedup = exhaustive / active
    assert speedup >= SPEEDUP_FLOOR, (
        f"active-set speedup {speedup:.2f}x below {SPEEDUP_FLOOR}x "
        f"(exhaustive {exhaustive:.3f}s, active {active:.3f}s)"
    )
