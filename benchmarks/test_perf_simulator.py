"""Simulator performance: cycles per second for each router model.

Not a paper figure — this benchmark tracks the cost of the simulation
substrate itself, which determines how close to the paper's radix-64 /
long-window configuration a given machine can run.  pytest-benchmark's
statistics across rounds make regressions in the hot per-cycle loops
visible.
"""

import pytest

from common import BASE_CONFIG

from repro.harness.experiment import SwitchSimulation
from repro.routers.baseline import BaselineRouter
from repro.routers.buffered import BufferedCrossbarRouter
from repro.routers.distributed import DistributedRouter
from repro.routers.hierarchical import HierarchicalCrossbarRouter
from repro.routers.shared_buffer import SharedBufferCrossbarRouter
from repro.routers.voq import VoqRouter

CYCLES = 300

ROUTERS = {
    "baseline": BaselineRouter,
    "distributed": DistributedRouter,
    "buffered": BufferedCrossbarRouter,
    "shared_buffer": SharedBufferCrossbarRouter,
    "hierarchical": HierarchicalCrossbarRouter,
    "voq": VoqRouter,
}


@pytest.mark.parametrize("name", sorted(ROUTERS))
def test_perf_router_step(benchmark, name):
    cls = ROUTERS[name]

    def run():
        sim = SwitchSimulation(cls(BASE_CONFIG), load=0.6)
        for _ in range(CYCLES):
            sim.step()
        return sim.router.stats.flits_ejected

    delivered = benchmark.pedantic(run, rounds=3, iterations=1)
    # Sanity: the simulated router actually moved traffic.
    assert delivered > 0
