"""Ablation (Section 5.2): shared credit-return bus vs ideal credits.

The fully buffered crossbar returns crosspoint credits over one shared
bus per input row, with distributed arbitration.  The paper compares
this against an "ideal (but not realizable) switch in which credits are
returned immediately" and reports that "there is minimal difference" —
a crosspoint that loses the bus arbitration has three spare cycles to
retry because each flit occupies the row for four cycles.

This ablation regenerates that comparison.
"""

from common import BASE_CONFIG, SAT_SETTINGS, once, save_table

from repro.harness.experiment import saturation_throughput
from repro.harness.report import format_table
from repro.routers.buffered import BufferedCrossbarRouter


def test_ablation_credit_return_bus(benchmark):
    def run():
        shared = saturation_throughput(
            BufferedCrossbarRouter, BASE_CONFIG, settings=SAT_SETTINGS
        )
        ideal = saturation_throughput(
            BufferedCrossbarRouter,
            BASE_CONFIG.with_(ideal_credit_return=True),
            settings=SAT_SETTINGS,
        )
        # The shared bus matters most when buffers are shallow: with a
        # single-flit crosspoint buffer every credit is on the critical
        # path.
        shared_shallow = saturation_throughput(
            BufferedCrossbarRouter,
            BASE_CONFIG.with_(crosspoint_buffer_depth=1),
            settings=SAT_SETTINGS,
        )
        ideal_shallow = saturation_throughput(
            BufferedCrossbarRouter,
            BASE_CONFIG.with_(crosspoint_buffer_depth=1,
                              ideal_credit_return=True),
            settings=SAT_SETTINGS,
        )
        return shared, ideal, shared_shallow, ideal_shallow

    shared, ideal, shared_shallow, ideal_shallow = once(benchmark, run)

    table = format_table(
        ["crosspoint depth", "shared bus", "ideal credits"],
        [
            (BASE_CONFIG.crosspoint_buffer_depth, f"{shared:.3f}",
             f"{ideal:.3f}"),
            (1, f"{shared_shallow:.3f}", f"{ideal_shallow:.3f}"),
        ],
        title="Ablation: shared credit-return bus vs ideal credit return "
              "(saturation throughput)",
    )
    save_table("ablation_credit_bus", table)

    # Section 5.2: minimal difference at the paper's 4-flit buffers.
    assert abs(shared - ideal) < 0.05
