"""Ablation (Section 4.1): local arbitration group size m.

The distributed switch allocator arbitrates locally over groups of m
inputs and then globally over k/m local winners (Figure 6; the paper
uses m = 8, chosen so "each stage can fit in a clock cycle").  The
group size trades wiring locality against arbitration fairness; this
ablation shows throughput is robust across group sizes — the reason the
paper can pick m for circuit-level convenience.
"""

from common import BASE_CONFIG, SAT_SETTINGS, once, save_table

from repro.harness.experiment import saturation_throughput
from repro.harness.report import format_table
from repro.routers.distributed import DistributedRouter

GROUP_SIZES = (2, 4, 8, 16)


def test_ablation_local_group_size(benchmark):
    def run():
        return {
            m: saturation_throughput(
                DistributedRouter,
                BASE_CONFIG.with_(local_group_size=m),
                settings=SAT_SETTINGS,
            )
            for m in GROUP_SIZES
        }

    sats = once(benchmark, run)

    table = format_table(
        ["local group size m", "saturation throughput"],
        [(m, f"{t:.3f}") for m, t in sats.items()],
        title="Ablation: distributed allocator local group size",
    )
    save_table("ablation_group_size", table)

    values = list(sats.values())
    assert max(values) - min(values) < 0.08
    for t in values:
        assert t > 0.4
