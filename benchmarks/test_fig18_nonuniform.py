"""Figure 18: nonuniform traffic (diagonal, hotspot, bursty; Table 1).

Regenerates the saturation behaviour of the baseline, fully buffered,
and hierarchical (p=8) routers under the three nonuniform patterns of
Table 1 with single-flit packets.

Paper claims checked:
* diagonal: the hierarchical crossbar exceeds the baseline's
  throughput (by ~10% in the paper);
* hotspot (h=8, 50%): all three architectures saturate below ~40% of
  capacity — the oversubscribed outputs are the bottleneck;
* bursty (Markov ON/OFF, average burst 8): hierarchical and fully
  buffered reach near-full throughput while the baseline saturates
  around half, and the hierarchical crossbar's two stages of buffering
  let it match or beat the fully buffered crossbar.
"""

from common import BASE_CONFIG, SAT_SETTINGS, once, save_table

from repro.harness.experiment import saturation_throughput
from repro.harness.report import format_table
from repro.routers.buffered import BufferedCrossbarRouter
from repro.routers.distributed import DistributedRouter
from repro.routers.hierarchical import HierarchicalCrossbarRouter
from repro.traffic.patterns import Diagonal, Hotspot, UniformRandom

ARCHS = (
    ("baseline", DistributedRouter, BASE_CONFIG),
    ("fully-buffered", BufferedCrossbarRouter, BASE_CONFIG),
    ("hierarchical p=8", HierarchicalCrossbarRouter,
     BASE_CONFIG.with_(subswitch_size=8)),
)


def test_fig18_nonuniform_traffic(benchmark):
    def run():
        k = BASE_CONFIG.radix
        results = {}
        for name, cls, cfg in ARCHS:
            results[("diagonal", name)] = saturation_throughput(
                cls, cfg, settings=SAT_SETTINGS,
                pattern_factory=lambda c: Diagonal(k))
            results[("hotspot", name)] = saturation_throughput(
                cls, cfg, settings=SAT_SETTINGS,
                pattern_factory=lambda c: Hotspot(k, num_hotspots=8,
                                                  hot_fraction=0.5))
            results[("bursty", name)] = saturation_throughput(
                cls, cfg, settings=SAT_SETTINGS,
                pattern_factory=lambda c: UniformRandom(k),
                injection="onoff", avg_burst=8.0)
        return results

    results = once(benchmark, run)

    rows = []
    for pattern in ("diagonal", "hotspot", "bursty"):
        for name, _, _ in ARCHS:
            rows.append((pattern, name, f"{results[(pattern, name)]:.3f}"))
    table = format_table(
        ["pattern", "architecture", "saturation throughput"],
        rows,
        title="Figure 18: nonuniform traffic (Table 1 patterns, "
              "1-flit packets, k=%d, v=4, p=8)" % BASE_CONFIG.radix,
    )
    save_table("fig18_nonuniform", table)

    # (a) Diagonal: hierarchical beats the baseline.
    assert results[("diagonal", "hierarchical p=8")] > results[
        ("diagonal", "baseline")] + 0.05

    # (b) Hotspot: every architecture saturates under ~40% + margin.
    for name, _, _ in ARCHS:
        assert results[("hotspot", name)] < 0.5

    # (c) Bursty: buffered designs near full throughput; baseline ~half.
    assert results[("bursty", "fully-buffered")] > 0.85
    assert results[("bursty", "hierarchical p=8")] > 0.85
    assert results[("bursty", "baseline")] < 0.7
    # Hierarchical handles bursts at least as well as fully buffered
    # (two stages of buffering), within noise.
    assert results[("bursty", "hierarchical p=8")] > results[
        ("bursty", "fully-buffered")] - 0.03
