"""Figure 9: latency vs offered load for the baseline architecture.

Regenerates three curves on uniform random traffic with single-flit
packets: the low-radix (radix-16) router with centralized single-cycle
allocation, and the high-radix router with distributed allocation under
CVA and OVA speculative VC allocation.

Paper claims checked:
* the high-radix router has higher zero-load latency (deeper pipeline
  plus increased serialization at a single stage);
* the high-radix router saturates well below the low-radix one
  ("approximately 50% or 12% lower"), with most of the loss due to
  speculative VC allocation;
* OVA saturates below CVA ("about 45%").
"""

from common import BASE_CONFIG, LOADS, LOW_RADIX, SAT_SETTINGS, SETTINGS, once, save_table

from repro.harness.experiment import run_load_sweep, saturation_throughput
from repro.harness.report import format_saturation, format_sweeps
from repro.routers.baseline import BaselineRouter
from repro.routers.distributed import DistributedRouter

LOW_CONFIG = BASE_CONFIG.with_(
    radix=LOW_RADIX, subswitch_size=4, local_group_size=4
)
CVA = BASE_CONFIG
OVA = BASE_CONFIG.with_(vc_allocator="ova")


def test_fig09_baseline_architecture(benchmark):
    def run():
        sweeps = [
            run_load_sweep(BaselineRouter, LOW_CONFIG, LOADS,
                           label="low-radix", settings=SETTINGS),
            run_load_sweep(DistributedRouter, CVA, LOADS,
                           label="high-radix CVA", settings=SETTINGS),
            run_load_sweep(DistributedRouter, OVA, LOADS,
                           label="high-radix OVA", settings=SETTINGS),
        ]
        sats = {
            "low-radix": saturation_throughput(
                BaselineRouter, LOW_CONFIG, settings=SAT_SETTINGS),
            "high-radix CVA": saturation_throughput(
                DistributedRouter, CVA, settings=SAT_SETTINGS),
            "high-radix OVA": saturation_throughput(
                DistributedRouter, OVA, settings=SAT_SETTINGS),
        }
        return sweeps, sats

    sweeps, sats = once(benchmark, run)

    table = format_sweeps(
        sweeps,
        title="Figure 9: latency vs offered load, baseline architecture "
              "(uniform random, 1-flit packets)",
    )
    table += "\n\nsaturation throughput:\n" + "\n".join(
        f"  {name:16s} {thpt:.3f}" for name, thpt in sats.items()
    )
    save_table("fig09_baseline", table)

    low, cva, ova = sweeps
    # Higher zero-load latency for the high-radix router.
    assert cva.zero_load_latency() > low.zero_load_latency()
    # High-radix baseline saturates well below the low-radix router.
    assert sats["high-radix CVA"] < sats["low-radix"] - 0.05
    # OVA's deeper speculation costs additional throughput.
    assert sats["high-radix OVA"] < sats["high-radix CVA"] - 0.02
    # Ballpark bands from the paper (50% / 45% / 60%): generous margins
    # because the substrate differs.
    assert 0.40 < sats["high-radix CVA"] < 0.72
    assert 0.35 < sats["high-radix OVA"] < 0.65
    assert 0.55 < sats["low-radix"] < 0.85
