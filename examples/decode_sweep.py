#!/usr/bin/env python3
"""Closed-loop decode traffic: step time vs all-reduce message size.

Tensor-parallel transformer decode is a *dependency-driven* workload:
every layer runs an attention all-reduce then an MLP all-reduce, and a
rank only enters the next phase once the previous one has delivered —
so the interesting metric is not latency at a fixed offered load but
the *decode step time* that emerges from the fabric.  This example
sweeps the all-reduce message size on a 2-level folded Clos, runs the
DAG to completion under the event-driven scheduler, and persists the
raw results as JSON via ``repro.harness.persistence`` (then reloads
them, proving the round trip) so the sweep can be re-plotted without
re-simulating.

Run:
    python examples/decode_sweep.py [results.json]
"""

import sys

from repro import ClosNetworkSimulation, FoldedClos, NetworkConfig
from repro.core.flit import reset_packet_ids
from repro.harness.experiment import SweepResult
from repro.harness.persistence import load_sweeps, save_sweeps
from repro.harness.report import format_table
from repro.workloads import transformer_decode

RADIX = 8
LEVELS = 2
LAYERS = 2
STEPS = 2
GAP = 8  # compute cycles between collective phases
SIZES = (1, 2, 4, 8)  # all-reduce chunk size in flits


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "decode_sweep.json"
    topo = FoldedClos(RADIX, LEVELS)
    ranks = topo.num_hosts
    print(f"decode workload: {ranks} ranks on a {LEVELS}-level "
          f"radix-{RADIX} Clos ({topo.num_switches} switches), "
          f"{STEPS} steps x {LAYERS} layers x 2 all-reduces")

    sweep = SweepResult(label=f"decode-clos{RADIX}x{LEVELS}")
    for size in SIZES:
        reset_packet_ids()
        cfg = NetworkConfig(radix=RADIX, levels=LEVELS, num_vcs=2, seed=7)
        sim = ClosNetworkSimulation(
            cfg,
            workload=transformer_decode(
                ranks, layers=LAYERS, steps=STEPS, size=size, gap=GAP,
            ),
            scheduler="event",
        )
        result = sim.run_workload()
        # The sweep axis is message size, not offered load; stash it
        # in the extras so the JSON stays self-describing.
        result.extra["message_size"] = float(size)
        sweep.results.append(result)

    save_sweeps(out_path, [sweep], metadata={
        "workload": "transformer-decode",
        "radix": RADIX, "levels": LEVELS,
        "layers": LAYERS, "steps": STEPS, "gap": GAP,
    })
    reloaded = load_sweeps(out_path)[0]
    assert [r.extra for r in reloaded.results] == \
        [r.extra for r in sweep.results], "persistence round trip drifted"
    print(f"persisted {len(sweep.results)} runs to {out_path} "
          "(reloaded byte-equivalent)\n")

    rows = []
    for r in reloaded.results:
        step = r.extra["stats.workload.step_mean"]
        rows.append([
            f"{int(r.extra['message_size'])}",
            f"{int(r.extra['stats.workload.makespan'])}",
            f"{step:.0f}",
            f"{r.extra['stats.workload.step_max']:.0f}",
            f"{r.extra['stats.workload.skew_max']:.0f}",
            f"{r.avg_latency:.1f}",
        ])
    print(format_table(
        ["size (flits)", "makespan", "step mean", "step max",
         "skew max", "msg latency"],
        rows,
    ))
    print("\nStep time grows with message size long before any "
          "open-loop sweep would call the fabric saturated — the "
          "dependency chain serializes the collectives.")


if __name__ == "__main__":
    main()
