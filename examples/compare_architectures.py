#!/usr/bin/env python3
"""Compare all five switch organizations on the same workload.

Reproduces, side by side and at reduced scale, the story the paper
tells across Figures 9, 13, and 17: the centralized baseline suffers
head-of-line blocking, distributed allocation scales but loses
throughput to speculation, crosspoint buffering restores ~100%
throughput at quadratic cost, and the hierarchical crossbar keeps the
performance at a realizable cost.

Run:
    python examples/compare_architectures.py [--radix 32] [--load 1.0]
"""

import argparse

from repro import (
    BaselineRouter,
    BufferedCrossbarRouter,
    DistributedRouter,
    HierarchicalCrossbarRouter,
    RouterConfig,
    SharedBufferCrossbarRouter,
    SweepSettings,
    SwitchSimulation,
)
from repro.harness.report import format_table
from repro.models.area import storage_bits

ARCHITECTURES = [
    ("low-radix baseline (k/2)", "baseline", BaselineRouter),
    ("distributed CVA", "distributed", DistributedRouter),
    ("distributed OVA", "distributed", DistributedRouter),
    ("fully buffered", "buffered", BufferedCrossbarRouter),
    ("shared buffer (NACK)", "shared_buffer", SharedBufferCrossbarRouter),
    ("hierarchical p=8", "hierarchical", HierarchicalCrossbarRouter),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--radix", type=int, default=32)
    parser.add_argument("--load", type=float, default=1.0)
    parser.add_argument("--packet-size", type=int, default=1)
    args = parser.parse_args()

    base = RouterConfig(radix=args.radix, subswitch_size=8)
    settings = SweepSettings(warmup=800, measure=1200, drain=100)
    zero_settings = SweepSettings(warmup=300, measure=600, drain=8000)

    rows = []
    for label, area_key, cls in ARCHITECTURES:
        if label.startswith("low-radix"):
            cfg = base.with_(radix=max(4, args.radix // 2),
                             subswitch_size=4, local_group_size=4)
        elif label == "distributed OVA":
            cfg = base.with_(vc_allocator="ova")
        else:
            cfg = base

        sat = SwitchSimulation(
            cls(cfg), load=args.load, packet_size=args.packet_size
        ).run(settings)
        zero = SwitchSimulation(
            cls(cfg), load=0.1, packet_size=args.packet_size
        ).run(zero_settings)
        rows.append((
            label,
            f"{zero.avg_latency:.1f}",
            f"{sat.throughput:.3f}",
            f"{storage_bits(area_key, cfg):,}",
        ))

    print(format_table(
        ["architecture", "zero-load latency (cycles)",
         f"throughput @ load {args.load}", "storage (bits)"],
        rows,
        title=f"Switch organizations at radix {args.radix}, v=4, "
              f"{args.packet_size}-flit packets",
    ))
    print(
        "\nThe paper's arc: the buffered crossbar wins on raw throughput "
        "but its storage grows as v*k^2; the hierarchical crossbar keeps "
        "most of the throughput at ~1/p of the crosspoint storage."
    )


if __name__ == "__main__":
    main()
