#!/usr/bin/env python3
"""Regenerate the paper's figures without pytest.

Runs the same experiments as ``benchmarks/`` but as one plain script —
useful when you want the figure tables (and ASCII plots) without the
benchmark harness, or want to pass a different scale on the command
line.

Run:
    python examples/reproduce_figures.py --figures 9,13
    python examples/reproduce_figures.py --radix 64 --figures 17
    python examples/reproduce_figures.py            # analytic figures only
"""

import argparse

from repro import RouterConfig, SweepSettings
from repro.harness.experiment import run_load_sweep, saturation_throughput
from repro.harness.plot import plot_sweeps
from repro.harness.report import format_table
from repro.models import (
    ALL_TECHNOLOGIES,
    cost_vs_radix,
    latency_vs_radix,
    optimal_radix,
)
from repro.models.technology import TECH_2003, TECH_2010
from repro.routers.baseline import BaselineRouter
from repro.routers.buffered import BufferedCrossbarRouter
from repro.routers.distributed import DistributedRouter
from repro.routers.hierarchical import HierarchicalCrossbarRouter


def fig2() -> None:
    print("== Figure 2: optimal radix per technology ==")
    rows = [
        (t.name, f"{t.aspect_ratio:.0f}", optimal_radix(t))
        for t in ALL_TECHNOLOGIES
    ]
    print(format_table(["technology", "aspect ratio", "k*"], rows))


def fig3() -> None:
    print("== Figure 3: latency and cost vs radix ==")
    ks = list(range(8, 257, 24))
    lat03 = dict(latency_vs_radix(TECH_2003, ks))
    lat10 = dict(latency_vs_radix(TECH_2010, ks))
    cost03 = dict(cost_vs_radix(TECH_2003, ks))
    rows = [
        (k, f"{lat03[k] * 1e9:.0f}", f"{lat10[k] * 1e9:.0f}",
         f"{cost03[k]:.2f}")
        for k in ks
    ]
    print(format_table(
        ["radix", "latency 2003 (ns)", "latency 2010 (ns)",
         "cost 2003 (k channels)"], rows,
    ))


def fig9(cfg: RouterConfig, settings: SweepSettings) -> None:
    print("== Figure 9: baseline architectures ==")
    loads = [0.1, 0.3, 0.5, 0.7, 0.9]
    low = cfg.with_(radix=max(4, cfg.radix // 2), subswitch_size=4,
                    local_group_size=4)
    sweeps = [
        run_load_sweep(BaselineRouter, low, loads, label="low-radix",
                       settings=settings),
        run_load_sweep(DistributedRouter, cfg, loads, label="CVA",
                       settings=settings),
        run_load_sweep(DistributedRouter, cfg.with_(vc_allocator="ova"),
                       loads, label="OVA", settings=settings),
    ]
    print(plot_sweeps(sweeps, title="latency vs offered load"))


def fig13(cfg: RouterConfig, settings: SweepSettings) -> None:
    print("== Figure 13: fully buffered crossbar ==")
    loads = [0.1, 0.3, 0.5, 0.7, 0.9]
    sweeps = [
        run_load_sweep(DistributedRouter, cfg, loads, label="baseline",
                       settings=settings),
        run_load_sweep(BufferedCrossbarRouter, cfg, loads,
                       label="fully-buffered", settings=settings),
    ]
    print(plot_sweeps(sweeps, title="latency vs offered load"))


def fig17(cfg: RouterConfig, settings: SweepSettings) -> None:
    print("== Figure 17(a): hierarchical crossbar, uniform traffic ==")
    sat = SweepSettings(settings.warmup, settings.measure, 100)
    rows = [("fully-buffered", f"{saturation_throughput(BufferedCrossbarRouter, cfg, settings=sat):.3f}")]
    for p in (4, 8, 16):
        if cfg.radix % p:
            continue
        thpt = saturation_throughput(
            HierarchicalCrossbarRouter, cfg.with_(subswitch_size=p),
            settings=sat,
        )
        rows.append((f"subswitch {p}", f"{thpt:.3f}"))
    print(format_table(["architecture", "saturation throughput"], rows))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figures", default="2,3",
                        help="comma-separated subset of 2,3,9,13,17")
    parser.add_argument("--radix", type=int, default=32)
    parser.add_argument("--warmup", type=int, default=800)
    parser.add_argument("--measure", type=int, default=1200)
    args = parser.parse_args()

    cfg = RouterConfig(radix=args.radix, subswitch_size=8)
    settings = SweepSettings(warmup=args.warmup, measure=args.measure,
                             drain=20000)
    wanted = {f.strip() for f in args.figures.split(",")}
    dispatch = {
        "2": fig2,
        "3": fig3,
        "9": lambda: fig9(cfg, settings),
        "13": lambda: fig13(cfg, settings),
        "17": lambda: fig17(cfg, settings),
    }
    for key in ("2", "3", "9", "13", "17"):
        if key in wanted:
            dispatch[key]()
            print()


if __name__ == "__main__":
    main()
