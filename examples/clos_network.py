#!/usr/bin/env python3
"""Network-level experiment: high-radix vs low-radix Clos (Figure 19).

Builds two folded-Clos networks with the same number of hosts — one
from high-radix routers (3 unfolded stages), one from low-radix routers
(5 unfolded stages) — routes packets obliviously (random middle stage),
and compares latency-load curves.  The single high-radix router has a
deeper pipeline, but the shorter network more than makes up for it:
"this factor is more than offset by the reduced hop count."

Run:
    python examples/clos_network.py
"""

from repro import ClosNetworkSimulation, FoldedClos, NetworkConfig
from repro.harness.report import format_table


def main() -> None:
    high = NetworkConfig(radix=16, levels=2)  # 64 hosts, 3 stages
    low = NetworkConfig(radix=8, levels=3)  # 64 hosts, 5 stages

    for name, cfg in (("high-radix", high), ("low-radix", low)):
        topo = FoldedClos(cfg.radix, cfg.levels)
        print(f"{name}: radix {cfg.radix}, {topo.stages_unfolded} stages, "
              f"{topo.num_hosts} hosts, {topo.num_switches} switches, "
              f"avg {topo.average_hop_count():.2f} router hops")

    rows = []
    for load in (0.1, 0.3, 0.5, 0.7):
        row = [f"{load:.1f}"]
        for cfg in (high, low):
            sim = ClosNetworkSimulation(cfg, load)
            r = sim.run(warmup=600, measure=800, drain=6000)
            row.append(
                f"{r.avg_latency:.1f}" + ("*" if r.saturated else "")
            )
        rows.append(row)

    print()
    print(format_table(
        ["load", "high-radix latency", "low-radix latency"],
        rows,
        title="Figure 19 (scaled): Clos network latency vs offered load",
    ))
    print("\n(* = saturated; latency unbounded in steady state)")


if __name__ == "__main__":
    main()
