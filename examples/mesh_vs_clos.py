#!/usr/bin/env python3
"""Topology study: folded Clos vs 2D mesh at equal host count.

The paper's conclusion flags topology as the next question for
high-radix routers ("high-radix routers reduce network hop count,
presenting challenges in the design of optimal network topologies").
This example compares the Figure 19 substrate — a folded Clos with
oblivious routing — against a 2D mesh with dimension-order routing at
the same number of hosts, showing how the indirect network converts
router radix into lower hop count and latency.

Run:
    python examples/mesh_vs_clos.py
"""

from repro.harness.report import format_table
from repro.network import (
    FoldedClos,
    Mesh,
    NetworkConfig,
    NetworkSimulation,
)


def main() -> None:
    clos = FoldedClos(radix=8, levels=2)  # 16 hosts, radix-8 switches
    mesh = Mesh(dims=(4, 4), concentration=1)  # 16 hosts, radix-5 switches
    assert clos.num_hosts == mesh.num_hosts

    print("topology          switches  router radix  avg hops")
    print(f"folded Clos       {clos.num_switches:>8}  {clos.radix:>12}  "
          f"{clos.average_hop_count():>8.2f}")
    print(f"4x4 mesh          {mesh.num_switches:>8}  {mesh.radix:>12}  "
          f"{mesh.average_hop_count():>8.2f}")
    print()

    rows = []
    for load in (0.1, 0.3, 0.5):
        row = [f"{load:.1f}"]
        for name, topo, radix in (
            ("clos", clos, 8),
            ("mesh", mesh, 5),
        ):
            cfg = NetworkConfig(radix=radix, num_vcs=2)
            sim = NetworkSimulation(cfg, load, topology=topo)
            r = sim.run(warmup=500, measure=700, drain=6000)
            row.append(f"{r.avg_latency:.1f}" + ("*" if r.saturated else ""))
        rows.append(row)

    print(format_table(
        ["load", "clos latency", "mesh latency"],
        rows,
        title="Uniform random traffic, 16 hosts (* = saturated)",
    ))
    print("\nThe Clos pays for its lower hop count with more switches; "
          "the mesh economizes on hardware but queues packets through "
          "more routers.")


if __name__ == "__main__":
    main()
