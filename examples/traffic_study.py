#!/usr/bin/env python3
"""Stress a router with every Table 1 traffic pattern.

Shows how each switch organization degrades (or doesn't) under the
paper's nonuniform workloads: diagonal, hotspot, bursty (Markov
ON/OFF), and the adversarial worst-case pattern for the hierarchical
crossbar — the Figure 17(b)/18 experiments in miniature.

Run:
    python examples/traffic_study.py [--radix 32]
"""

import argparse

from repro import (
    BufferedCrossbarRouter,
    Diagonal,
    DistributedRouter,
    HierarchicalCrossbarRouter,
    Hotspot,
    RouterConfig,
    SweepSettings,
    SwitchSimulation,
    UniformRandom,
    WorstCaseHierarchical,
)
from repro.harness.report import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--radix", type=int, default=32)
    args = parser.parse_args()

    k = args.radix
    cfg = RouterConfig(radix=k, subswitch_size=8)
    settings = SweepSettings(warmup=800, measure=1200, drain=100)

    workloads = [
        ("uniform", UniformRandom(k), "bernoulli"),
        ("diagonal", Diagonal(k), "bernoulli"),
        ("hotspot h=8", Hotspot(k, num_hotspots=8), "bernoulli"),
        ("bursty (burst=8)", UniformRandom(k), "onoff"),
        ("worst-case p=8", WorstCaseHierarchical(k, 8), "bernoulli"),
    ]
    architectures = [
        ("baseline", DistributedRouter),
        ("fully buffered", BufferedCrossbarRouter),
        ("hierarchical p=8", HierarchicalCrossbarRouter),
    ]

    rows = []
    for wname, pattern, injection in workloads:
        row = [wname]
        for _, cls in architectures:
            sim = SwitchSimulation(
                cls(cfg), load=1.0, pattern=pattern, injection=injection
            )
            row.append(f"{sim.run(settings).throughput:.3f}")
        rows.append(row)

    print(format_table(
        ["workload"] + [name for name, _ in architectures],
        rows,
        title=f"Saturation throughput by traffic pattern "
              f"(k={k}, v=4, 1-flit packets)",
    ))
    print(
        "\nNote the hierarchical crossbar matching the fully buffered "
        "design everywhere except the adversarial worst-case pattern, "
        "which the paper notes 'is very unlikely in practice'."
    )


if __name__ == "__main__":
    main()
