#!/usr/bin/env python3
"""Design-space exploration with the Section 2 analytical models.

Answers the designer's question the paper opens with: given a
technology (total router bandwidth, router delay, network size, packet
length), what radix should the router have, and what does the choice
cost?  Sweeps radix through the latency, cost, power, and area models
and prints the optimum for each of the paper's four technology
anchors — including the 2003 (k* ~ 40) and 2010 (k* ~ 127) headline
numbers.

Run:
    python examples/design_sweep.py
    python examples/design_sweep.py --bandwidth 5e12 --delay 10e-9 \
        --nodes 4096 --packet 256
"""

import argparse

from repro.core.config import RouterConfig
from repro.harness.report import format_table
from repro.models import (
    ALL_TECHNOLOGIES,
    AreaModel,
    Technology,
    hierarchical_storage_bits,
    network_cost,
    network_power,
    optimal_radix,
    packet_latency,
)


def describe(tech: Technology) -> None:
    k_star = optimal_radix(tech)
    print(f"\n{tech.name}: aspect ratio A = {tech.aspect_ratio:.0f}, "
          f"optimal radix k* = {k_star}")

    rows = []
    model = AreaModel()
    for k in sorted({8, 16, 32, 64, 128, 256, k_star}):
        if k < 2:
            continue
        # Area model needs a subswitch size dividing k; use ~sqrt(k).
        p = max(1, 2 ** ((k.bit_length() - 1) // 2))
        while k % p:
            p //= 2
        cfg = RouterConfig(radix=k, subswitch_size=p)
        rows.append((
            ("-> " if k == k_star else "   ") + str(k),
            f"{packet_latency(k, tech) * 1e9:.1f}",
            f"{network_cost(k, tech, 1000.0):.2f}",
            f"{network_power(k, tech):.0f}",
            f"{hierarchical_storage_bits(cfg) / 8 / 1024:.0f}",
        ))
    print(format_table(
        ["radix", "latency (ns)", "cost (k channels)",
         "power (routers)", "hier. storage (KiB)"],
        rows,
    ))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bandwidth", type=float,
                        help="router bandwidth, bits/s")
    parser.add_argument("--delay", type=float, help="router delay, s")
    parser.add_argument("--nodes", type=int, help="network size N")
    parser.add_argument("--packet", type=int, help="packet length, bits")
    args = parser.parse_args()

    if args.bandwidth:
        tech = Technology(
            "custom", args.bandwidth, args.delay or 20e-9,
            args.nodes or 1024, args.packet or 128, 0,
        )
        describe(tech)
        return

    for tech in ALL_TECHNOLOGIES:
        describe(tech)


if __name__ == "__main__":
    main()
