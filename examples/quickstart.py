#!/usr/bin/env python3
"""Quickstart: simulate one high-radix router and read off its numbers.

Builds the paper's proposed hierarchical crossbar router (Section 6) at
a reduced radix, offers it uniform random traffic at a few loads, and
prints the latency-load curve plus the saturation throughput — the same
measurements behind Figure 17(a).

Run:
    python examples/quickstart.py
"""

from repro import (
    HierarchicalCrossbarRouter,
    RouterConfig,
    SweepSettings,
    SwitchSimulation,
)

def main() -> None:
    # Radix-32 instance of the paper's design point: 4 virtual
    # channels, 8x8 subswitches, 4-cycle switch traversal per flit.
    config = RouterConfig(radix=32, num_vcs=4, subswitch_size=8)
    settings = SweepSettings(warmup=500, measure=1000, drain=10000)

    print(f"hierarchical crossbar: radix {config.radix}, "
          f"{config.num_vcs} VCs, subswitch {config.subswitch_size}")
    print(f"{'load':>6} {'avg latency':>12} {'throughput':>11}")

    for load in (0.1, 0.3, 0.5, 0.7, 0.9):
        router = HierarchicalCrossbarRouter(config)
        sim = SwitchSimulation(router, load=load)
        result = sim.run(settings)
        marker = "  (saturated)" if result.saturated else ""
        print(f"{load:>6.1f} {result.avg_latency:>12.1f} "
              f"{result.throughput:>11.3f}{marker}")

    # Saturation throughput: drive the router at full offered load.
    router = HierarchicalCrossbarRouter(config)
    sim = SwitchSimulation(router, load=1.0)
    result = sim.run(SweepSettings(warmup=500, measure=1000, drain=100))
    print(f"\nsaturation throughput: {result.throughput:.3f} of capacity")
    print(f"switch grants: {router.stats.switch_grants}, "
          f"subswitch arbitration denials: {router.stats.switch_denials}")


if __name__ == "__main__":
    main()
