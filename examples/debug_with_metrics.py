#!/usr/bin/env python3
"""Instrument and validate a router run.

Shows the developer-facing tooling around the simulator:

* ``CheckedRouter`` wraps any switch model and raises at the exact
  cycle an invariant breaks (conservation, packet order, VC
  discipline, output bandwidth) — the first thing to reach for when
  developing a new router microarchitecture;
* ``MetricsCollector`` gathers latency histograms, per-output load
  balance, and buffer-occupancy behaviour that the headline
  latency/throughput numbers hide.

Run:
    python examples/debug_with_metrics.py [--load 0.85]
"""

import argparse

from repro import RouterConfig, SwitchSimulation
from repro.harness.metrics import MetricsCollector
from repro.harness.validation import CheckedRouter
from repro.routers.hierarchical import HierarchicalCrossbarRouter


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--load", type=float, default=0.85)
    parser.add_argument("--cycles", type=int, default=3000)
    args = parser.parse_args()

    config = RouterConfig(radix=16, subswitch_size=4, local_group_size=4)
    router = CheckedRouter(HierarchicalCrossbarRouter(config))
    sim = SwitchSimulation(router, load=args.load, record_delivered=True)
    metrics = MetricsCollector(config.radix, sample_every=8)

    for _ in range(args.cycles):
        sim.step()
        metrics.observe_cycle(sim)

    # Drain so the conservation check can complete.
    sim.stop_sources()
    for _ in range(20000):
        sim.step()
        metrics.observe_cycle(sim)
        if router.idle() and all(not s.backlog() for s in sim.sources):
            break
    router.assert_drained()

    print(f"hierarchical crossbar, radix {config.radix}, "
          f"load {args.load}: all invariants held over "
          f"{router.violations_checked} checked deliveries\n")
    print(metrics.summary())


if __name__ == "__main__":
    main()
